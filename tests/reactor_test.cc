// Reactor torture battery: the event-driven connection layer must survive
// adversarial framing (byte-at-a-time delivery, splits at every boundary
// offset, mid-frame disconnects, oversized claims), antisocial peers
// (slow-loris half-open sessions, half-closed pipelines), and shutdown races
// — and its implicit pipelined batching must be observationally identical to
// sequential execution (response bytes, secure metadata, metric accounting).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"

namespace shield::net {
namespace {

sgx::EnclaveConfig FastEnclave(const char* name = "reactor-test-enclave") {
  sgx::EnclaveConfig c;
  c.name = name;
  c.epc.epc_bytes = 16u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 128u << 20;
  return c;
}

shieldstore::Options StoreOptions() {
  shieldstore::Options o;
  o.num_buckets = 1024;
  o.heap_chunk_bytes = 1u << 20;
  return o;
}

// Raw TCP dial with a receive timeout so a misbehaving server fails the
// test instead of hanging it.
int DialLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Sends exactly `len` bytes or fails.
bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// A raw pipelining client: real handshake + session crypto, but frame
// transmission under the test's full control (the Client class is strictly
// request/response and can never pipeline).
class RawSession {
 public:
  bool Connect(uint16_t port, const sgx::AttestationAuthority& authority,
               const sgx::Measurement& measurement, bool encrypt = true) {
    fd_ = DialLoopback(port);
    if (fd_ < 0) {
      return false;
    }
    Result<Bytes> key_material = ClientHandshake(fd_, authority, measurement);
    if (!key_material.ok()) {
      return false;
    }
    crypto_ = std::make_unique<SessionCrypto>(*key_material, /*is_client=*/true, encrypt);
    return true;
  }
  ~RawSession() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  int fd() const { return fd_; }
  SessionCrypto& crypto() { return *crypto_; }

  // Length-prefixed wire bytes for one sealed request.
  Bytes WireFrame(const Request& request) {
    const Bytes record = crypto_->Seal(EncodeRequest(request));
    Bytes wire(4 + record.size());
    StoreLe32(wire.data(), static_cast<uint32_t>(record.size()));
    std::copy(record.begin(), record.end(), wire.begin() + 4);
    return wire;
  }

  // Receives one frame, opens and decodes it.
  Result<Response> RecvResponse(Bytes* plaintext_out = nullptr) {
    Result<Bytes> frame = RecvFrame(fd_);
    if (!frame.ok()) {
      return frame.status();
    }
    Result<Bytes> plaintext = crypto_->Open(*frame);
    if (!plaintext.ok()) {
      return plaintext.status();
    }
    if (plaintext_out != nullptr) {
      *plaintext_out = *plaintext;
    }
    return DecodeResponse(*plaintext);
  }

 private:
  int fd_ = -1;
  std::unique_ptr<SessionCrypto> crypto_;
};

class ReactorTortureTest : public ::testing::Test {
 protected:
  ReactorTortureTest()
      : enclave_(FastEnclave()),
        authority_(AsBytes("ias-root")),
        store_(enclave_, StoreOptions(), 2) {}

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<Server>(enclave_, store_, authority_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  // Polls live_sessions() until `pred` holds or ~2s elapse.
  bool WaitForSessions(const std::function<bool(size_t)>& pred) {
    for (int i = 0; i < 400; ++i) {
      if (pred(server_->live_sessions())) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred(server_->live_sessions());
  }

  sgx::Enclave enclave_;
  sgx::AttestationAuthority authority_;
  shieldstore::PartitionedStore store_;
  std::unique_ptr<Server> server_;
};

// ------------------------------------------------- incremental frame decode

TEST_F(ReactorTortureTest, ByteAtATimeFrameDelivery) {
  StartServer({});
  RawSession raw;
  ASSERT_TRUE(raw.Connect(server_->port(), authority_, enclave_.measurement()));

  const Bytes wire = raw.WireFrame({OpCode::kSet, "trickle", "slow-and-steady", 0});
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(SendAll(raw.fd(), wire.data() + i, 1));
    if (i % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  Result<Response> response = raw.RecvResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, Code::kOk);

  // The write landed and the session still serves whole frames.
  const Bytes check = raw.WireFrame({OpCode::kGet, "trickle", "", 0});
  ASSERT_TRUE(SendAll(raw.fd(), check.data(), check.size()));
  Result<Response> got = raw.RecvResponse();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->value, "slow-and-steady");
}

TEST_F(ReactorTortureTest, FrameSplitAtEveryBoundaryOffset) {
  // Property: for EVERY split point of the wire bytes — including inside the
  // 4-byte length prefix — delivering [0,k) then [k,end) yields exactly the
  // response the unsplit frame would get.
  StartServer({});
  RawSession raw;
  ASSERT_TRUE(raw.Connect(server_->port(), authority_, enclave_.measurement()));

  // Fixed-width values so every wire frame has the same length and a split
  // index sweeps the same boundary set for all of them.
  auto value_for = [](size_t split) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "s%03u", static_cast<unsigned>(split % 1000));
    return std::string(buf);
  };
  const Bytes probe = raw.WireFrame({OpCode::kSet, "probe", value_for(0), 0});
  const size_t wire_len = probe.size();  // every frame below has this shape
  ASSERT_TRUE(SendAll(raw.fd(), probe.data(), probe.size()));
  ASSERT_TRUE(raw.RecvResponse().ok());

  for (size_t split = 1; split < wire_len; ++split) {
    const Bytes wire = raw.WireFrame({OpCode::kSet, "probe", value_for(split), 0});
    ASSERT_EQ(wire.size(), wire_len);
    ASSERT_TRUE(SendAll(raw.fd(), wire.data(), split));
    // Give the reactor a chance to observe the partial frame.
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    ASSERT_TRUE(SendAll(raw.fd(), wire.data() + split, wire.size() - split));
    Result<Response> response = raw.RecvResponse();
    ASSERT_TRUE(response.ok()) << "split at " << split << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->status, Code::kOk) << "split at " << split;
  }

  // The last write is the one that stuck.
  const Bytes check = raw.WireFrame({OpCode::kGet, "probe", "", 0});
  ASSERT_TRUE(SendAll(raw.fd(), check.data(), check.size()));
  Result<Response> got = raw.RecvResponse();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, value_for(wire_len - 1));
}

// ------------------------------------------------------- antisocial peers

TEST_F(ReactorTortureTest, SlowLorisHalfOpenSessionsDoNotStarveService) {
  StartServer({});
  Client anchor(authority_, enclave_.measurement());
  ASSERT_TRUE(anchor.Connect(server_->port()).ok());
  ASSERT_TRUE(anchor.Set("anchor", "steady").ok());

  // 64 connections that handshake never, send almost nothing, and stall.
  constexpr size_t kLoris = 64;
  std::vector<int> fds;
  for (size_t i = 0; i < kLoris; ++i) {
    const int fd = DialLoopback(server_->port());
    ASSERT_GE(fd, 0);
    if (i % 2 == 0) {
      // Half of them dribble 2 bytes of a length prefix and go quiet.
      const uint8_t partial[2] = {0x30, 0x00};
      SendAll(fd, partial, sizeof(partial));
    }
    fds.push_back(fd);
  }

  // The sessions gauge sees them all (loris + anchor)...
  EXPECT_TRUE(WaitForSessions([&](size_t n) { return n >= kLoris + 1; }))
      << "live_sessions=" << server_->live_sessions();

  // ...and they cost other clients nothing.
  EXPECT_EQ(anchor.Get("anchor").value(), "steady");
  Client fresh(authority_, enclave_.measurement());
  ASSERT_TRUE(fresh.Connect(server_->port()).ok());
  EXPECT_EQ(fresh.Get("anchor").value(), "steady");
  fresh.Close();

  for (int fd : fds) {
    close(fd);
  }
  // The reactor reaps every closed session.
  EXPECT_TRUE(WaitForSessions([&](size_t n) { return n <= 2; }))
      << "live_sessions=" << server_->live_sessions();
}

TEST_F(ReactorTortureTest, MidFrameDisconnectIsReapedCleanly) {
  StartServer({});
  const size_t baseline = server_->live_sessions();

  for (int round = 0; round < 8; ++round) {
    RawSession raw;
    ASSERT_TRUE(raw.Connect(server_->port(), authority_, enclave_.measurement()));
    // Promise 100 bytes, deliver 9, vanish.
    uint8_t prefix[4];
    StoreLe32(prefix, 100);
    ASSERT_TRUE(SendAll(raw.fd(), prefix, sizeof(prefix)));
    ASSERT_TRUE(SendAll(raw.fd(), reinterpret_cast<const uint8_t*>("truncated"), 9));
    // RawSession's destructor closes the socket mid-frame.
  }

  EXPECT_TRUE(WaitForSessions([&](size_t n) { return n <= baseline; }))
      << "live_sessions=" << server_->live_sessions();
  Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  ASSERT_TRUE(client.Set("after", "disconnects").ok());
  EXPECT_EQ(client.Get("after").value(), "disconnects");
}

TEST_F(ReactorTortureTest, HalfCloseAfterPipelinedWritesDrainsAllResponses) {
  StartServer({});
  RawSession raw;
  ASSERT_TRUE(raw.Connect(server_->port(), authority_, enclave_.measurement()));

  // Pipeline a burst of writes, then half-close: "no more requests, but I am
  // still listening". Every buffered frame must be answered, in order, and
  // only then may the server close.
  constexpr int kFrames = 12;
  Bytes burst;
  for (int i = 0; i < kFrames; ++i) {
    const Bytes wire =
        raw.WireFrame({OpCode::kSet, "half-" + std::to_string(i), "v" + std::to_string(i), 0});
    burst.insert(burst.end(), wire.begin(), wire.end());
  }
  ASSERT_TRUE(SendAll(raw.fd(), burst.data(), burst.size()));
  ASSERT_EQ(shutdown(raw.fd(), SHUT_WR), 0);

  for (int i = 0; i < kFrames; ++i) {
    Result<Response> response = raw.RecvResponse();
    ASSERT_TRUE(response.ok()) << "frame " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, Code::kOk) << "frame " << i;
  }
  // After the last response the server closes its side.
  EXPECT_FALSE(RecvFrame(raw.fd()).ok());

  // Every pipelined write landed.
  Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(client.Get("half-" + std::to_string(i)).value(), "v" + std::to_string(i));
  }
}

TEST_F(ReactorTortureTest, OversizedFrameRejectedWithoutResponse) {
  StartServer({});
  // Established session claiming a frame bigger than the 64 MiB cap: the
  // reactor must drop the connection without a response (same contract as
  // the pre-handshake oversized-claim attack) and never attempt the
  // allocation.
  RawSession raw;
  ASSERT_TRUE(raw.Connect(server_->port(), authority_, enclave_.measurement()));
  uint8_t prefix[4];
  StoreLe32(prefix, (64u << 20) + 1);
  ASSERT_TRUE(SendAll(raw.fd(), prefix, sizeof(prefix)));
  uint8_t byte;
  const ssize_t n = recv(raw.fd(), &byte, 1, 0);
  EXPECT_EQ(n, 0) << "server must close, not answer (recv=" << n << ")";

  // Collateral check: the server is unharmed.
  Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  ASSERT_TRUE(client.Set("still", "here").ok());
  EXPECT_EQ(client.Get("still").value(), "here");
}

// --------------------------------------------------------- shutdown races

// TSan target: many sessions in flight while Stop() tears the reactor down.
// Run under ThreadSanitizer by scripts/check.sh.
TEST_F(ReactorTortureTest, ConcurrentSessionsRaceStop) {
  StartServer({});
  const uint16_t port = server_->port();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        ClientOptions opts;
        opts.connect_attempts = 1;
        opts.recv_timeout_ms = 500;
        Client c(authority_, enclave_.measurement(), true, opts);
        if (!c.Connect(port).ok()) {
          break;  // server is gone — expected once Stop lands
        }
        for (int i = 0; i < 4 && !done.load(std::memory_order_acquire); ++i) {
          const std::string key = "race-" + std::to_string(t) + "-" + std::to_string(i);
          if (!c.Set(key, "v").ok()) {
            break;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        c.Close();
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Stop();
  done.store(true, std::memory_order_release);
  for (auto& t : clients) {
    t.join();
  }
  // Stop() is idempotent even with the races above.
  server_->Stop();
  EXPECT_GT(completed.load(), 0u);
}

// ----------------------------------------- implicit-batch equivalence

// A full private stack (registry, enclave, store, server) so metric counts
// are exact and the secure state is caller-reproducible: a pinned store
// master key plus a pinned enclave DRBG seed make two stacks that execute
// identical op sequences byte-comparable via ExportSecureMetadata (entry IVs
// come from the enclave DRBG, so the draw order must match too).
struct PrivateStack {
  PrivateStack(const sgx::AttestationAuthority& authority, size_t coalesce_depth)
      : enclave(SeededEnclave()) {
    shieldstore::Options store_options = StoreOptions();
    store_options.metrics = &registry;
    const std::string master = "equivalence-fixed-master-key-32b";
    store_options.master_key.assign(master.begin(), master.end());
    store = std::make_unique<shieldstore::PartitionedStore>(enclave, store_options, 1);
    ServerOptions options;
    options.metrics = &registry;
    options.coalesce_depth = coalesce_depth;
    server = std::make_unique<Server>(enclave, *store, authority, options);
  }

  static sgx::EnclaveConfig SeededEnclave() {
    sgx::EnclaveConfig c = FastEnclave("equivalence-enclave");
    const std::string seed = "equivalence-drbg-seed";
    c.rng_seed.assign(seed.begin(), seed.end());
    return c;
  }

  obs::Registry registry;
  sgx::Enclave enclave;
  std::unique_ptr<shieldstore::PartitionedStore> store;
  std::unique_ptr<Server> server;
};

// The ops exercised by the equivalence test: every plain verb, including a
// miss, a delete, and arithmetic.
std::vector<Request> EquivalenceOps() {
  std::vector<Request> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back({OpCode::kSet, "eq-" + std::to_string(i), "value-" + std::to_string(i), 0});
  }
  ops.push_back({OpCode::kSet, "counter", "10", 0});
  for (int i = 0; i < 6; ++i) {
    ops.push_back({OpCode::kGet, "eq-" + std::to_string(i), "", 0});
  }
  ops.push_back({OpCode::kGet, "missing", "", 0});
  ops.push_back({OpCode::kAppend, "eq-0", "+tail", 0});
  ops.push_back({OpCode::kIncrement, "counter", "", 32});
  ops.push_back({OpCode::kDelete, "eq-5", "", 0});
  ops.push_back({OpCode::kGet, "eq-5", "", 0});
  ops.push_back({OpCode::kPing, "", "", 0});
  ops.push_back({OpCode::kGet, "eq-0", "", 0});
  ops.push_back({OpCode::kGet, "counter", "", 0});
  return ops;
}

// Normalizes an ExportSecureMetadata blob for comparison: MAC-hash slots
// whose initialized bit is clear hold whatever the enclave heap held, so
// zero them (the bitmaps themselves are compared verbatim).
Bytes NormalizeMetadata(Bytes blob) {
  constexpr size_t kHeader = 4 + 8 + 8 + 8;  // magic + buckets + hashes + entries
  constexpr size_t kKeys = 16 * 4;
  EXPECT_GE(blob.size(), kHeader + kKeys);
  uint64_t num_hashes = 0;
  std::memcpy(&num_hashes, blob.data() + 4 + 8, 8);
  const size_t bitmap_words = (num_hashes + 63) / 64;
  const size_t bitmap_off = kHeader + kKeys;
  const size_t hashes_off = bitmap_off + bitmap_words * 8;
  EXPECT_EQ(blob.size(), hashes_off + num_hashes * 16);
  for (uint64_t i = 0; i < num_hashes; ++i) {
    uint64_t word = 0;
    std::memcpy(&word, blob.data() + bitmap_off + (i / 64) * 8, 8);
    if ((word & (1ull << (i % 64))) == 0) {
      std::fill_n(blob.begin() + hashes_off + i * 16, 16, uint8_t{0});
    }
  }
  return blob;
}

TEST_F(ReactorTortureTest, ImplicitBatchEquivalentToSequentialExecution) {
  const std::vector<Request> ops = EquivalenceOps();

  // Pipelined run: every frame sent before any response is read, so the
  // reactor coalesces adjacent singleton frames into implicit batches.
  PrivateStack pipelined(authority_, /*coalesce_depth=*/64);
  ASSERT_TRUE(pipelined.server->Start().ok());
  std::vector<Bytes> pipelined_responses;
  {
    RawSession raw;
    ASSERT_TRUE(raw.Connect(pipelined.server->port(), authority_,
                            pipelined.enclave.measurement()));
    Bytes burst;
    for (const Request& op : ops) {
      const Bytes wire = raw.WireFrame(op);
      burst.insert(burst.end(), wire.begin(), wire.end());
    }
    ASSERT_TRUE(SendAll(raw.fd(), burst.data(), burst.size()));
    for (size_t i = 0; i < ops.size(); ++i) {
      Bytes plaintext;
      Result<Response> response = raw.RecvResponse(&plaintext);
      ASSERT_TRUE(response.ok()) << "op " << i << ": " << response.status().ToString();
      pipelined_responses.push_back(std::move(plaintext));
    }
  }

  // Sequential reference: coalescing disabled AND strict request/response
  // lockstep — the exact behavior of the pre-reactor server.
  PrivateStack sequential(authority_, /*coalesce_depth=*/1);
  ASSERT_TRUE(sequential.server->Start().ok());
  std::vector<Bytes> sequential_responses;
  {
    RawSession raw;
    ASSERT_TRUE(raw.Connect(sequential.server->port(), authority_,
                            sequential.enclave.measurement()));
    for (size_t i = 0; i < ops.size(); ++i) {
      const Bytes wire = raw.WireFrame(ops[i]);
      ASSERT_TRUE(SendAll(raw.fd(), wire.data(), wire.size()));
      Bytes plaintext;
      Result<Response> response = raw.RecvResponse(&plaintext);
      ASSERT_TRUE(response.ok()) << "op " << i << ": " << response.status().ToString();
      sequential_responses.push_back(std::move(plaintext));
    }
  }

  // 1. Response plaintext is byte-identical, frame by frame. (The sealed
  // bytes differ only by session key; the plaintext is the protocol.)
  ASSERT_EQ(pipelined_responses.size(), sequential_responses.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(pipelined_responses[i], sequential_responses[i]) << "response " << i;
  }

  // 2. The stores are in the identical secure state: same entries, same
  // versions, same Merkle MAC hashes under the same (pinned) keys.
  EXPECT_EQ(NormalizeMetadata(pipelined.store->partition(0).ExportSecureMetadata()),
            NormalizeMetadata(sequential.store->partition(0).ExportSecureMetadata()));

  // 3. The implicit path actually engaged...
  EXPECT_GE(pipelined.server->coalesced_batches(), 1u);
  EXPECT_GE(pipelined.server->coalesced_ops(), 2u);
  EXPECT_EQ(sequential.server->coalesced_batches(), 0u);
  EXPECT_EQ(sequential.server->coalesced_ops(), 0u);

  // ...and the metric accounting agrees with sequential execution exactly:
  // per-verb counters identical, nothing double-counted into the explicit
  // batch family, every op attributed.
  obs::MetricsSnapshot pipe_snap = pipelined.server->BuildStatsSnapshot();
  obs::MetricsSnapshot seq_snap = sequential.server->BuildStatsSnapshot();
  uint64_t pipe_total = 0;
  for (const char* verb : {"net.ops.get", "net.ops.set", "net.ops.delete", "net.ops.append",
                           "net.ops.increment", "net.ops.ping"}) {
    EXPECT_EQ(pipe_snap.CounterValue(verb), seq_snap.CounterValue(verb)) << verb;
    pipe_total += pipe_snap.CounterValue(verb);
  }
  EXPECT_EQ(pipe_total, ops.size());
  EXPECT_EQ(pipe_snap.CounterValue("net.batch_ops"), 0u);
  EXPECT_EQ(pipe_snap.CounterValue("net.batches"), 0u);
  EXPECT_EQ(pipelined.server->requests_served(), ops.size());
  EXPECT_EQ(sequential.server->requests_served(), ops.size());

  // The coalesce-depth histogram saw one sample per implicit batch, and the
  // coalesced-op counter equals the histogram's mass.
  EXPECT_EQ(pipe_snap.CounterValue("net.coalesced.batches"),
            pipelined.server->coalesced_batches());
  EXPECT_EQ(pipe_snap.CounterValue("net.coalesced.ops"), pipelined.server->coalesced_ops());
  const obs::HistogramData* depth = pipe_snap.Histogram("net.coalesce_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count, pipelined.server->coalesced_batches());
  EXPECT_LE(pipelined.server->coalesced_ops(), ops.size());

  pipelined.server->Stop();
  sequential.server->Stop();
}

// Sanity on the reactor gauges the daemon exports: sessions_opened counts
// accepts, net.sessions tracks live, both in a private registry.
TEST_F(ReactorTortureTest, SessionGaugesTrackAcceptAndClose) {
  PrivateStack stack(authority_, /*coalesce_depth=*/64);
  ASSERT_TRUE(stack.server->Start().ok());

  {
    Client a(authority_, stack.enclave.measurement());
    Client b(authority_, stack.enclave.measurement());
    ASSERT_TRUE(a.Connect(stack.server->port()).ok());
    ASSERT_TRUE(b.Connect(stack.server->port()).ok());
    ASSERT_TRUE(a.Set("g", "1").ok());
    obs::MetricsSnapshot snap = stack.server->BuildStatsSnapshot();
    EXPECT_EQ(snap.CounterValue("net.sessions_opened"), 2u);
    EXPECT_EQ(stack.server->live_sessions(), 2u);
    a.Close();
    b.Close();
  }
  for (int i = 0; i < 400 && stack.server->live_sessions() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stack.server->live_sessions(), 0u);
  obs::MetricsSnapshot snap = stack.server->BuildStatsSnapshot();
  EXPECT_EQ(snap.CounterValue("net.sessions_rejected"), 0u);
  stack.server->Stop();
}

// max_sessions is a hard cap: accepts past it are closed immediately,
// counted, and never cost established sessions anything.
TEST_F(ReactorTortureTest, SessionCapRejectsExcessAccepts) {
  PrivateStack stack(authority_, /*coalesce_depth=*/64);
  ServerOptions capped;
  capped.metrics = &stack.registry;
  capped.max_sessions = 2;
  stack.server = std::make_unique<Server>(stack.enclave, *stack.store, authority_, capped);
  ASSERT_TRUE(stack.server->Start().ok());

  Client a(authority_, stack.enclave.measurement());
  Client b(authority_, stack.enclave.measurement());
  ASSERT_TRUE(a.Connect(stack.server->port()).ok());
  ASSERT_TRUE(b.Connect(stack.server->port()).ok());
  ASSERT_TRUE(a.Set("cap", "v").ok());

  // Third connection: accepted by the kernel, closed by the reactor before
  // any handshake byte is answered.
  const int fd = DialLoopback(stack.server->port());
  ASSERT_GE(fd, 0);
  uint8_t byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);
  close(fd);

  for (int i = 0; i < 400; ++i) {
    obs::MetricsSnapshot snap = stack.server->BuildStatsSnapshot();
    if (snap.CounterValue("net.sessions_rejected") >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::MetricsSnapshot snap = stack.server->BuildStatsSnapshot();
  EXPECT_EQ(snap.CounterValue("net.sessions_rejected"), 1u);
  // Established sessions unaffected.
  EXPECT_EQ(a.Get("cap").value(), "v");
  EXPECT_EQ(b.Get("cap").value(), "v");
  stack.server->Stop();
}

}  // namespace
}  // namespace shield::net
