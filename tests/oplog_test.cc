// Operation-log extension tests (§7's fine-grained persistence design):
// group commit, chained-MAC integrity, torn tails, replay, rollback.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/shieldstore/oplog.h"

namespace shield::shieldstore {
namespace {

class OpLogTest : public ::testing::Test {
 protected:
  OpLogTest() : enclave_(Config()), sealer_(AsBytes("fuse"), enclave_.measurement()) {
    dir_ = ::testing::TempDir() + "/oplog_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    counter_opts_.backing_file = dir_ + "/counters.bin";
    counter_opts_.increment_cost_cycles = 0;
    log_opts_.path = dir_ + "/wal.log";
    log_opts_.group_commit_ops = 4;
  }
  ~OpLogTest() override { std::filesystem::remove_all(dir_); }

  static sgx::EnclaveConfig Config() {
    sgx::EnclaveConfig c;
    c.name = "oplog-test";
    c.epc.page_crypto = false;
    c.epc.crossing_cycles = 0;
    c.epc.kernel_fault_cycles = 0;
    c.epc.resident_access_cycles = 0;
    c.heap_reserve_bytes = 64u << 20;
    c.rng_seed = ToBytes("oplog");
    return c;
  }

  Options StoreOptions() {
    Options o;
    o.num_buckets = 256;
    return o;
  }

  sgx::Enclave enclave_;
  sgx::SealingService sealer_;
  sgx::MonotonicCounterService::Options counter_opts_;
  OpLogOptions log_opts_;
  std::string dir_;
};

TEST_F(OpLogTest, LogAndReplay) {
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    OperationLog log(sealer_, counters, log_opts_);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(log.LogSet("k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(log.LogDelete("k3").ok());
    ASSERT_TRUE(log.Commit().ok());
    EXPECT_GE(log.commits(), 3u);  // two auto group commits + explicit
  }
  Store store(enclave_, StoreOptions());
  ASSERT_TRUE(OperationLog::Replay(sealer_, counters, log_opts_, store).ok());
  EXPECT_EQ(store.Size(), 9u);
  EXPECT_EQ(store.Get("k1").value(), "v1");
  EXPECT_EQ(store.Get("k3").status().code(), Code::kNotFound);
}

TEST_F(OpLogTest, UncommittedTailIsDiscarded) {
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    OpLogOptions opts = log_opts_;
    opts.group_commit_ops = 1000;  // no auto commit
    OperationLog log(sealer_, counters, opts);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.LogSet("committed", "yes").ok());
    ASSERT_TRUE(log.Commit().ok());
    ASSERT_TRUE(log.LogSet("uncommitted", "lost").ok());
    // "Crash": drop the log object without Commit... but the destructor
    // commits; simulate the crash by copying the file first.
    std::filesystem::copy(opts.path, dir_ + "/crashed.log");
  }
  OpLogOptions crashed = log_opts_;
  crashed.path = dir_ + "/crashed.log";
  Store store(enclave_, StoreOptions());
  const Status replay = OperationLog::Replay(sealer_, counters, crashed, store);
  // The destructor's final commit bumped the counter past the crashed copy's
  // last commit — which is exactly what a stale/torn log should surface.
  EXPECT_EQ(replay.code(), Code::kRollbackDetected);
  // The committed record was applied before the rollback verdict was
  // reached; callers must discard the store on failure. Verify the tail
  // never applied regardless:
  EXPECT_EQ(store.Get("uncommitted").status().code(), Code::kNotFound);
}

TEST_F(OpLogTest, TamperedRecordDetected) {
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    OperationLog log(sealer_, counters, log_opts_);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(log.LogSet("k" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(log.Commit().ok());
  }
  // Flip a byte in the middle of the file.
  FILE* f = std::fopen(log_opts_.path.c_str(), "rb+");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x20, f);
  std::fclose(f);
  Store store(enclave_, StoreOptions());
  EXPECT_EQ(OperationLog::Replay(sealer_, counters, log_opts_, store).code(),
            Code::kIntegrityFailure);
}

TEST_F(OpLogTest, ReorderedRecordsDetected) {
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    OpLogOptions opts = log_opts_;
    opts.group_commit_ops = 1000;
    OperationLog log(sealer_, counters, opts);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.LogSet("a", std::string(100, 'a')).ok());
    ASSERT_TRUE(log.LogSet("b", std::string(100, 'b')).ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  // Swap the two (equal-length) mutation frames wholesale.
  FILE* f = std::fopen(log_opts_.path.c_str(), "rb+");
  std::fseek(f, 8, SEEK_SET);  // past header
  uint8_t len_bytes[4];
  ASSERT_EQ(std::fread(len_bytes, 1, 4, f), 4u);
  const uint32_t len = LoadLe32(len_bytes);
  std::vector<uint8_t> first(len), second(len);
  ASSERT_EQ(std::fread(first.data(), 1, len, f), len);
  std::fseek(f, 4, SEEK_CUR);  // second frame's length prefix (same len)
  ASSERT_EQ(std::fread(second.data(), 1, len, f), len);
  std::fseek(f, 12, SEEK_SET);
  std::fwrite(second.data(), 1, len, f);
  std::fseek(f, 4, SEEK_CUR);
  std::fwrite(first.data(), 1, len, f);
  std::fclose(f);
  Store store(enclave_, StoreOptions());
  EXPECT_EQ(OperationLog::Replay(sealer_, counters, log_opts_, store).code(),
            Code::kIntegrityFailure);
}

TEST_F(OpLogTest, StaleLogReplayDetected) {
  sgx::MonotonicCounterService counters(counter_opts_);
  OperationLog log(sealer_, counters, log_opts_);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.LogSet("balance", "100").ok());
  ASSERT_TRUE(log.Commit().ok());
  // Attacker stashes the log, then lets it advance.
  std::filesystem::copy(log_opts_.path, dir_ + "/stale.log");
  ASSERT_TRUE(log.LogSet("balance", "0").ok());
  ASSERT_TRUE(log.Commit().ok());
  OpLogOptions stale = log_opts_;
  stale.path = dir_ + "/stale.log";
  Store store(enclave_, StoreOptions());
  EXPECT_EQ(OperationLog::Replay(sealer_, counters, stale, store).code(),
            Code::kRollbackDetected);
}

TEST_F(OpLogTest, ResetStartsFreshEpoch) {
  sgx::MonotonicCounterService counters(counter_opts_);
  OperationLog log(sealer_, counters, log_opts_);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.LogSet("old", "state").ok());
  ASSERT_TRUE(log.Commit().ok());
  std::filesystem::copy(log_opts_.path, dir_ + "/pre-reset.log");
  ASSERT_TRUE(log.Reset().ok());  // e.g. after a snapshot subsumed the log
  ASSERT_TRUE(log.LogSet("new", "state").ok());
  ASSERT_TRUE(log.Commit().ok());
  {
    Store store(enclave_, StoreOptions());
    ASSERT_TRUE(OperationLog::Replay(sealer_, counters, log_opts_, store).ok());
    EXPECT_EQ(store.Get("new").value(), "state");
    EXPECT_EQ(store.Get("old").status().code(), Code::kNotFound);
  }
  // The pre-reset epoch no longer replays.
  OpLogOptions old_epoch = log_opts_;
  old_epoch.path = dir_ + "/pre-reset.log";
  Store store(enclave_, StoreOptions());
  EXPECT_EQ(OperationLog::Replay(sealer_, counters, old_epoch, store).code(),
            Code::kRollbackDetected);
}

TEST_F(OpLogTest, GroupCommitAmortizesCounterBumps) {
  sgx::MonotonicCounterService counters(counter_opts_);
  OpLogOptions opts = log_opts_;
  opts.group_commit_ops = 32;
  OperationLog log(sealer_, counters, opts);
  ASSERT_TRUE(log.Open().ok());
  for (int i = 0; i < 320; ++i) {
    ASSERT_TRUE(log.LogSet("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(log.commits(), 10u);  // 320 ops, one bump per 32
}

TEST_F(OpLogTest, ReopenContinuesChain) {
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    OperationLog log(sealer_, counters, log_opts_);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.LogSet("first", "1").ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  {
    OperationLog log(sealer_, counters, log_opts_);
    ASSERT_TRUE(log.Open().ok());  // scans + resumes the chain
    ASSERT_TRUE(log.LogSet("second", "2").ok());
    ASSERT_TRUE(log.Commit().ok());
  }
  Store store(enclave_, StoreOptions());
  ASSERT_TRUE(OperationLog::Replay(sealer_, counters, log_opts_, store).ok());
  EXPECT_EQ(store.Get("first").value(), "1");
  EXPECT_EQ(store.Get("second").value(), "2");
}

}  // namespace
}  // namespace shield::shieldstore
