// Workload generator tests: distribution shapes, mix ratios, key/value
// formatting (Tables 2 and 3).
#include <gtest/gtest.h>

#include <map>

#include "src/workload/generator.h"
#include "src/workload/zipf.h"

namespace shield::workload {
namespace {

TEST(ZipfTest, SkewConcentratesOnHotRanks) {
  ZipfGenerator zipf(10'000, 0.99, 7);
  std::map<uint64_t, size_t> counts;
  constexpr size_t kDraws = 200'000;
  for (size_t i = 0; i < kDraws; ++i) {
    counts[zipf.Next()]++;
  }
  // With theta 0.99 over 10k items, rank 0 draws ~10% of all samples.
  EXPECT_GT(counts[0], kDraws / 20);
  EXPECT_GT(counts[0], counts[100] * 5);
  // Everything is in range.
  EXPECT_LT(counts.rbegin()->first, 10'000u);
}

TEST(ZipfTest, LowThetaIsFlatter) {
  ZipfGenerator hot(10'000, 0.99, 7);
  ZipfGenerator mild(10'000, 0.50, 7);
  size_t hot0 = 0, mild0 = 0;
  for (int i = 0; i < 100'000; ++i) {
    hot0 += hot.Next() == 0;
    mild0 += mild.Next() == 0;
  }
  EXPECT_GT(hot0, mild0 * 3) << "theta 0.99 must be far more skewed than 0.5";
}

TEST(ZipfTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfGenerator zipf(10'000, 0.99, 7);
  std::map<uint64_t, size_t> counts;
  for (int i = 0; i < 100'000; ++i) {
    counts[zipf.Next()]++;
  }
  // The hottest key should not be index 0 (that's the point of scrambling)
  // but the distribution must remain heavily skewed.
  auto hottest = counts.begin();
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    if (it->second > hottest->second) {
      hottest = it;
    }
  }
  EXPECT_GT(hottest->second, 5000u);
}

TEST(WorkloadTest, MixRatiosRespected) {
  for (const WorkloadConfig& config : AllTable2Workloads()) {
    WorkloadGenerator gen(config, 10'000, 11);
    size_t reads = 0;
    constexpr size_t kDraws = 50'000;
    for (size_t i = 0; i < kDraws; ++i) {
      reads += gen.Next().kind == Op::Kind::kGet;
    }
    const double observed = static_cast<double>(reads) / kDraws;
    EXPECT_NEAR(observed, config.read_fraction, 0.02) << config.name;
  }
}

TEST(WorkloadTest, WriteKindsMatchConfig) {
  WorkloadGenerator rmw(RMW50_Z(), 1000, 3);
  WorkloadGenerator append(AP50_U(), 1000, 3);
  WorkloadGenerator set(RD50_U(), 1000, 3);
  for (int i = 0; i < 1000; ++i) {
    const Op a = rmw.Next(), b = append.Next(), c = set.Next();
    if (a.kind != Op::Kind::kGet) {
      EXPECT_EQ(a.kind, Op::Kind::kReadModifyWrite);
    }
    if (b.kind != Op::Kind::kGet) {
      EXPECT_EQ(b.kind, Op::Kind::kAppend);
    }
    if (c.kind != Op::Kind::kGet) {
      EXPECT_EQ(c.kind, Op::Kind::kSet);
    }
  }
}

TEST(WorkloadTest, LatestFavorsRecentKeys) {
  WorkloadGenerator gen(RD95_L(), 10'000, 5);
  size_t recent = 0;
  constexpr size_t kDraws = 50'000;
  for (size_t i = 0; i < kDraws; ++i) {
    recent += gen.Next().key_index >= 9'000;  // newest 10% of the key space
  }
  EXPECT_GT(recent, kDraws / 2) << "read-latest must concentrate on recent keys";
}

TEST(WorkloadTest, UniformCoversKeySpace) {
  WorkloadGenerator gen(RD100_U(), 100, 9);
  std::map<uint64_t, size_t> counts;
  for (int i = 0; i < 100'000; ++i) {
    counts[gen.Next().key_index]++;
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [key, count] : counts) {
    EXPECT_GT(count, 700u);
    EXPECT_LT(count, 1300u);
  }
}

TEST(WorkloadTest, KeyFormatting) {
  EXPECT_EQ(KeyAt(0, 16).size(), 16u);
  EXPECT_EQ(KeyAt(42, 16), "k000000000000042");
  EXPECT_NE(KeyAt(1, 16), KeyAt(10, 16));
  // Distinct indices give distinct keys within the representable range.
  EXPECT_NE(KeyAt(123456, 8), KeyAt(123457, 8));
}

TEST(WorkloadTest, ValueDeterministicAndSized) {
  for (const DataSet& ds : {SmallDataSet(), MediumDataSet(), LargeDataSet()}) {
    const std::string v1 = ValueFor(7, 0, ds.value_bytes);
    const std::string v2 = ValueFor(7, 0, ds.value_bytes);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(v1.size(), ds.value_bytes);
    EXPECT_NE(v1, ValueFor(8, 0, ds.value_bytes));
    EXPECT_NE(v1, ValueFor(7, 1, ds.value_bytes));
  }
}

TEST(WorkloadTest, Table3Geometries) {
  EXPECT_EQ(SmallDataSet().key_bytes, 16u);
  EXPECT_EQ(SmallDataSet().value_bytes, 16u);
  EXPECT_EQ(MediumDataSet().value_bytes, 128u);
  EXPECT_EQ(LargeDataSet().value_bytes, 512u);
}

}  // namespace
}  // namespace shield::workload
