// Adversarial fault-injection matrix: every TamperAgent mode must be
// detected with its exact status code (no crash, no hang, no silent wrong
// answer), partitions quarantine independently and recover from snapshot +
// oplog, and crash-safe persistence survives every injected crash point.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>

#include "src/faultinject/tamper.h"
#include "src/shieldstore/oplog.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/persist.h"
#include "src/shieldstore/store.h"

namespace shield {
namespace {

using faultinject::TamperAgent;
using faultinject::TamperMode;
using shieldstore::Options;
using shieldstore::OperationLog;
using shieldstore::OpLogOptions;
using shieldstore::PartitionedStore;
using shieldstore::Snapshotter;
using shieldstore::Store;

sgx::EnclaveConfig TestEnclaveConfig() {
  sgx::EnclaveConfig c;
  c.name = "faultinject-test";
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 256u << 20;
  c.rng_seed = ToBytes("faultinject-test");
  return c;
}

Options SmallOptions() {
  Options o;
  o.num_buckets = 256;
  o.heap_chunk_bytes = 1 << 20;
  return o;
}

class FaultInjectTest : public ::testing::Test {
 protected:
  FaultInjectTest() : enclave_(TestEnclaveConfig()) {
    dir_ = ::testing::TempDir() + "/faultinject_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    counter_opts_.backing_file = dir_ + "/counters.bin";
    counter_opts_.increment_cost_cycles = 0;
  }
  ~FaultInjectTest() override { std::filesystem::remove_all(dir_); }

  sgx::Enclave enclave_;
  std::string dir_;
  sgx::MonotonicCounterService::Options counter_opts_;
};

// ------------------------------------------------------- in-memory attacks

class TamperMatrixTest : public FaultInjectTest,
                         public ::testing::WithParamInterface<TamperMode> {};

TEST_P(TamperMatrixTest, DetectedWithExactCodeAndRecoverable) {
  const TamperMode mode = GetParam();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, SmallOptions());
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value = "v1-" + std::to_string(i);
    ASSERT_TRUE(store.Set(key, value).ok());
    expected[key] = value;
  }

  TamperAgent agent(0xC0FFEE00 + static_cast<uint64_t>(mode));
  if (mode == TamperMode::kEntryReplay) {
    // Replay needs a stale capture: stash an entry, then move every key
    // forward so the stash is out of date (same value size, so the stale
    // bytes fit the live allocation).
    ASSERT_TRUE(agent.CaptureEntry(store).ok());
    for (auto& [key, value] : expected) {
      value[1] = '2';  // "v1-..." -> "v2-..."
      ASSERT_TRUE(store.Set(key, value).ok());
    }
  }

  // Clean pre-attack snapshot: the recovery target.
  Snapshotter snap(store, sealer, counters, {dir_, /*optimized=*/false});
  ASSERT_TRUE(snap.SnapshotNow().ok());

  ASSERT_TRUE(agent.Tamper(store, mode).ok()) << TamperModeName(mode);
  const std::string target = agent.last_target_key();
  ASSERT_FALSE(target.empty());
  const Code want = faultinject::ExpectedDetection(mode);

  // Probe the attacked key. A cycle cannot corrupt a successful early-exit
  // Get, so it is probed with Set (full chain walk); everything else is
  // caught on the Get path.
  if (mode == TamperMode::kChainCycle) {
    EXPECT_EQ(store.Set(target, "probe").code(), want);
  } else {
    Result<std::string> probe = store.Get(target);
    ASSERT_FALSE(probe.ok());
    EXPECT_EQ(probe.status().code(), want) << probe.status().ToString();
  }

  // The full-table audit must pin the violation with the same code.
  const Store::ScrubReport report = store.Scrub();
  EXPECT_EQ(report.status.code(), want) << report.status.ToString();

  // Recovery: the pre-attack snapshot restores every committed key.
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, SmallOptions(), sealer, counters, {dir_, false});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (const auto& [key, value] : expected) {
    Result<std::string> got = (*recovered)->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value);
  }
  EXPECT_TRUE((*recovered)->Scrub().status.ok());
}

INSTANTIATE_TEST_SUITE_P(AllModes, TamperMatrixTest,
                         ::testing::ValuesIn(faultinject::kAllMemoryModes),
                         [](const ::testing::TestParamInfo<TamperMode>& info) {
                           return std::string(faultinject::TamperModeName(info.param));
                         });

TEST_F(FaultInjectTest, SameSeedPicksSameTarget) {
  Store store(enclave_, SmallOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Set("key-" + std::to_string(i), "v").ok());
  }
  TamperAgent a(42), b(42);
  ASSERT_TRUE(a.CaptureEntry(store).ok());
  ASSERT_TRUE(b.CaptureEntry(store).ok());
  EXPECT_EQ(a.last_target_key(), b.last_target_key());
}

TEST_F(FaultInjectTest, EmptyStoreHasNoTarget) {
  Store store(enclave_, SmallOptions());
  TamperAgent agent(1);
  EXPECT_EQ(agent.Tamper(store, TamperMode::kMacForge).code(), Code::kInvalidArgument);
}

// ------------------------------------------- partition quarantine/recovery

TEST_F(FaultInjectTest, QuarantinedPartitionRecoversWhileOthersServe) {
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Options total = SmallOptions();
  total.num_buckets = 1024;
  PartitionedStore ps(enclave_, total, 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_ops = 1000;  // commit only when asked
  OperationLog log(sealer, counters, log_opts);
  ASSERT_TRUE(log.Open().ok());

  std::map<std::string, std::string> expected;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value = "v1-" + std::to_string(i);
    ASSERT_TRUE(ps.Set(key, value).ok());
    ASSERT_TRUE(log.LogSet(key, value).ok());
    expected[key] = value;
  }
  ASSERT_TRUE(log.Commit().ok());

  const std::string snapdir = dir_ + "/snap";
  ASSERT_TRUE(ps.SnapshotAll(sealer, counters, snapdir).ok());

  // Committed mutations AFTER the snapshot: only the oplog holds them.
  for (int i = 0; i < 200; i += 5) {
    const std::string key = "key-" + std::to_string(i);
    const std::string value = "v2-" + std::to_string(i);
    ASSERT_TRUE(ps.Set(key, value).ok());
    ASSERT_TRUE(log.LogSet(key, value).ok());
    expected[key] = value;
  }
  ASSERT_TRUE(ps.Set("post-snapshot", "fresh").ok());
  ASSERT_TRUE(log.LogSet("post-snapshot", "fresh").ok());
  expected["post-snapshot"] = "fresh";
  ASSERT_TRUE(log.Commit().ok());

  // Attack partition 0.
  TamperAgent agent(7);
  ASSERT_TRUE(agent.Tamper(ps.partition(0), TamperMode::kMacForge).ok());
  const std::string target = agent.last_target_key();
  ASSERT_EQ(ps.PartitionOf(target), 0u);

  // Detection quarantines partition 0; every other partition keeps serving.
  EXPECT_EQ(ps.Get(target).status().code(), Code::kIntegrityFailure);
  EXPECT_TRUE(ps.IsQuarantined(0));
  EXPECT_EQ(ps.QuarantinedCount(), 1u);
  for (const auto& [key, value] : expected) {
    Result<std::string> got = ps.Get(key);
    if (ps.PartitionOf(key) == 0) {
      ASSERT_FALSE(got.ok()) << key;
      // Fast fail with the typed retryable code (the detecting op above got
      // the truthful kIntegrityFailure; later callers see "healing").
      EXPECT_EQ(got.status().code(), Code::kPartitionRecovering);
    } else {
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(got.value(), value);
    }
  }
  EXPECT_EQ(ps.ScrubAll().code(), Code::kPartitionRecovering);

  // Rebuild partition 0 from snapshot + committed oplog suffix.
  ASSERT_TRUE(
      ps.RecoverPartition(0, sealer, counters, snapdir, &log_opts).ok());
  EXPECT_FALSE(ps.IsQuarantined(0));
  EXPECT_EQ(ps.QuarantinedCount(), 0u);
  for (const auto& [key, value] : expected) {
    Result<std::string> got = ps.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value);
  }
  EXPECT_TRUE(ps.ScrubAll().ok());
}

TEST_F(FaultInjectTest, RecoverPartitionRejectsGeometryMismatch) {
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore four(enclave_, SmallOptions(), 4);
  ASSERT_TRUE(four.Set("k", "v").ok());
  const std::string snapdir = dir_ + "/snap";
  ASSERT_TRUE(four.SnapshotAll(sealer, counters, snapdir).ok());

  PartitionedStore two(enclave_, SmallOptions(), 2);
  EXPECT_EQ(two.RecoverPartition(0, sealer, counters, snapdir).code(),
            Code::kInvalidArgument);
}

// ----------------------------------------------- crash-safe snapshot files

class CrashSafetyTest : public FaultInjectTest {
 protected:
  CrashSafetyTest()
      : sealer_(AsBytes("fuse"), enclave_.measurement()),
        counters_(counter_opts_),
        store_(enclave_, SmallOptions()) {}

  Result<std::unique_ptr<Store>> Recover() {
    return Snapshotter::Recover(enclave_, SmallOptions(), sealer_, counters_,
                                {dir_, /*optimized=*/false});
  }

  sgx::SealingService sealer_;
  sgx::MonotonicCounterService counters_;
  Store store_;
};

TEST_F(CrashSafetyTest, CrashBeforeCommitKeepsCurrentGeneration) {
  ASSERT_TRUE(store_.Set("stable", "one").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());

  ASSERT_TRUE(store_.Set("late", "two").ok());
  snap.InjectCrash(Snapshotter::CrashPoint::kAfterTempWrite);
  const Status crashed = snap.SnapshotNow();
  EXPECT_EQ(crashed.code(), Code::kIoError);
  // The crash leaves the durable temp pair behind, exactly like power loss.
  EXPECT_TRUE(std::filesystem::exists(snap.DataPath() + ".tmp"));

  // Recovery sees only the committed generation.
  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Get("stable").value(), "one");
  EXPECT_EQ((*recovered)->Get("late").status().code(), Code::kNotFound);

  // A restarting snapshotter clears the stale temp artifacts.
  Snapshotter restarted(store_, sealer_, counters_, {dir_, false});
  EXPECT_FALSE(std::filesystem::exists(snap.DataPath() + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(snap.MetaPath() + ".tmp"));
}

TEST_F(CrashSafetyTest, CrashBeforeCounterIncrementRollsForward) {
  ASSERT_TRUE(store_.Set("stable", "one").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());

  ASSERT_TRUE(store_.Set("late", "two").ok());
  snap.InjectCrash(Snapshotter::CrashPoint::kAfterRename);
  EXPECT_EQ(snap.SnapshotNow().code(), Code::kIoError);

  // The new generation is fully durable; only the counter bump was lost.
  // Recovery completes the commit instead of discarding good data.
  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Get("late").value(), "two");

  // The roll-forward incremented the counter: recovery stays repeatable.
  Result<std::unique_ptr<Store>> again = Recover();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->Get("late").value(), "two");
}

TEST_F(CrashSafetyTest, InterruptedCommitFallsBackToPreviousGeneration) {
  ASSERT_TRUE(store_.Set("k", "one").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  ASSERT_TRUE(store_.Set("k", "two").ok());
  ASSERT_TRUE(snap.SnapshotNow().ok());

  // Simulate a crash inside a third snapshot's rename sequence, after the
  // current pair was demoted to .prev but before the new pair landed.
  std::filesystem::rename(snap.MetaPath(), snap.MetaPath() + ".prev");
  std::filesystem::rename(snap.DataPath(), snap.DataPath() + ".prev");

  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Get("k").value(), "two");
}

TEST_F(CrashSafetyTest, TornDataFileIsTypedIoError) {
  ASSERT_TRUE(store_.Set("k", "v").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  ASSERT_TRUE(TamperAgent::TruncateTail(snap.DataPath(), 10).ok());

  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kIoError);
}

TEST_F(CrashSafetyTest, TornCommittedCurrentNeverLoadsCorrupt) {
  // Two committed generations, then the current data file is torn. Serving
  // the previous generation would be indistinguishable from a rollback
  // attack (its sealed counter value is stale), so recovery must fail with
  // a typed error rather than load anything.
  ASSERT_TRUE(store_.Set("k", "one").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  ASSERT_TRUE(store_.Set("k", "two").ok());
  ASSERT_TRUE(snap.SnapshotNow().ok());
  ASSERT_TRUE(TamperAgent::TruncateTail(snap.DataPath(), 10).ok());

  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kIoError);
}

TEST_F(CrashSafetyTest, FlippedDataByteIsIntegrityFailure) {
  ASSERT_TRUE(store_.Set("k", "v").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  const auto size = std::filesystem::file_size(snap.DataPath());
  ASSERT_TRUE(TamperAgent::FlipFileByte(snap.DataPath(), size / 2).ok());

  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kIntegrityFailure);
}

TEST_F(CrashSafetyTest, SnapshotRollbackDetected) {
  ASSERT_TRUE(store_.Set("k", "one").ok());
  Snapshotter snap(store_, sealer_, counters_, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());

  TamperAgent agent(9);
  ASSERT_TRUE(agent.CaptureSnapshotFiles(dir_).ok());
  ASSERT_TRUE(store_.Set("k", "two").ok());
  ASSERT_TRUE(snap.SnapshotNow().ok());
  ASSERT_TRUE(agent.RollbackSnapshotFiles(dir_).ok());

  Result<std::unique_ptr<Store>> recovered = Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kRollbackDetected);
}

// ---------------------------------------------------------- oplog attacks

TEST_F(FaultInjectTest, OplogTruncatedCommitDetectedAsRollback) {
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_ops = 1000;
  {
    OperationLog log(sealer, counters, log_opts);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(log.LogSet("k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(log.Commit().ok());
  }
  // Drop the tail: the commit record is destroyed, but the counter already
  // advanced — a classic truncation-rollback.
  ASSERT_TRUE(TamperAgent::TruncateTail(log_opts.path, 5).ok());

  Store target(enclave_, SmallOptions());
  EXPECT_EQ(OperationLog::Replay(sealer, counters, log_opts, target).code(),
            Code::kRollbackDetected);
}

TEST_F(FaultInjectTest, OplogMidFlipDetectedAsIntegrityFailure) {
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_ops = 1000;
  {
    OperationLog log(sealer, counters, log_opts);
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(log.LogSet("key-" + std::to_string(i), "some-value").ok());
    }
    ASSERT_TRUE(log.Commit().ok());
  }
  const auto size = std::filesystem::file_size(log_opts.path);
  ASSERT_TRUE(TamperAgent::FlipFileByte(log_opts.path, size / 2).ok());

  Store target(enclave_, SmallOptions());
  EXPECT_EQ(OperationLog::Replay(sealer, counters, log_opts, target).code(),
            Code::kIntegrityFailure);
}

}  // namespace
}  // namespace shield
