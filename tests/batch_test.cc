// Batched operation pipeline: the kBatch codecs (round-trip property test +
// decode fuzz), batched-vs-sequential execution equivalence down to the MAC
// bucket hashes, partition-grouped execution under quarantine, durable group
// acks for batched mutations through the write-ahead store, and end-to-end
// multi-op frames over both enclave entry mechanisms.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield {
namespace {

using kv::BatchOp;
using kv::BatchOpResult;
using kv::BatchOpType;
using shieldstore::PartitionedStore;
using shieldstore::Store;
using shieldstore::WriteAheadStore;

sgx::EnclaveConfig TestEnclaveConfig(const char* seed) {
  sgx::EnclaveConfig c;
  c.name = "batch-test";
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 128u << 20;
  c.rng_seed = ToBytes(seed);
  return c;
}

shieldstore::Options SmallOptions() {
  shieldstore::Options o;
  o.num_buckets = 512;
  o.heap_chunk_bytes = 1 << 20;
  return o;
}

// ---------------------------------------------------------------- codecs

net::Request RandomRequest(Xoshiro256& rng) {
  net::Request r;
  // Valid single-op codes only (1..6); kBatch never nests.
  r.op = static_cast<net::OpCode>(1 + rng.NextBelow(6));
  r.key = "key-" + std::to_string(rng.NextBelow(1000));
  if (rng.NextBelow(2) == 0) {
    r.value.assign(rng.NextBelow(300), static_cast<char>('a' + rng.NextBelow(26)));
  }
  r.delta = static_cast<int64_t>(rng.Next());
  return r;
}

TEST(BatchProtocolTest, RequestRoundTripProperty) {
  Xoshiro256 rng(0xba7c4ULL);
  for (int round = 0; round < 200; ++round) {
    std::vector<net::Request> ops(1 + rng.NextBelow(32));
    for (auto& op : ops) {
      op = RandomRequest(rng);
    }
    Result<std::vector<net::Request>> back =
        net::DecodeBatchRequest(net::EncodeBatchRequest(ops));
    ASSERT_TRUE(back.ok()) << round << ": " << back.status().ToString();
    ASSERT_EQ(back->size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ((*back)[i].op, ops[i].op);
      EXPECT_EQ((*back)[i].key, ops[i].key);
      EXPECT_EQ((*back)[i].value, ops[i].value);
      EXPECT_EQ((*back)[i].delta, ops[i].delta);
    }
  }
}

TEST(BatchProtocolTest, ResponseRoundTripProperty) {
  Xoshiro256 rng(0xba7c5ULL);
  for (int round = 0; round < 200; ++round) {
    std::vector<net::Response> responses(1 + rng.NextBelow(32));
    for (auto& r : responses) {
      r.status = static_cast<Code>(rng.NextBelow(
          static_cast<uint64_t>(Code::kUnsupportedUnderWal) + 1));
      r.value.assign(rng.NextBelow(100), 'x');
    }
    Result<std::vector<net::Response>> back =
        net::DecodeBatchResponse(net::EncodeBatchResponse(responses));
    ASSERT_TRUE(back.ok()) << round << ": " << back.status().ToString();
    ASSERT_EQ(back->size(), responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ((*back)[i].status, responses[i].status);
      EXPECT_EQ((*back)[i].value, responses[i].value);
    }
  }
}

TEST(BatchProtocolTest, MalformedBatchesRejectedTyped) {
  const std::vector<net::Request> one = {{net::OpCode::kSet, "k", "v", 0}};
  const Bytes valid = net::EncodeBatchRequest(one);
  ASSERT_TRUE(net::IsBatchRequest(valid));

  // Empty payload / wrong leading byte.
  EXPECT_EQ(net::DecodeBatchRequest({}).status().code(), Code::kProtocolError);
  Bytes wrong_op = valid;
  wrong_op[0] = 1;
  EXPECT_EQ(net::DecodeBatchRequest(wrong_op).status().code(), Code::kProtocolError);

  // Zero-count batches carry no work and are rejected.
  Bytes zero = valid;
  StoreLe32(zero.data() + 1, 0);
  EXPECT_EQ(net::DecodeBatchRequest(zero).status().code(), Code::kProtocolError);

  // A forged count claiming 2^31 sub-ops with one op's bytes behind it must
  // fail typed — and cannot trick the decoder into a giant reserve, which is
  // bounded by the bytes actually present.
  Bytes forged = valid;
  StoreLe32(forged.data() + 1, 1u << 31);
  EXPECT_EQ(net::DecodeBatchRequest(forged).status().code(), Code::kProtocolError);

  // Count over the cap, even when honest.
  Bytes over = valid;
  StoreLe32(over.data() + 1, net::kMaxBatchOps + 1);
  EXPECT_EQ(net::DecodeBatchRequest(over).status().code(), Code::kProtocolError);

  // Truncated mid-sub-frame and trailing garbage.
  Bytes truncated = valid;
  truncated.pop_back();
  EXPECT_EQ(net::DecodeBatchRequest(truncated).status().code(), Code::kProtocolError);
  Bytes trailing = valid;
  trailing.push_back(0x00);
  EXPECT_EQ(net::DecodeBatchRequest(trailing).status().code(), Code::kProtocolError);

  // A nested kBatch sub-op is not a valid single-op code.
  Bytes nested = valid;
  nested[5] = static_cast<uint8_t>(net::OpCode::kBatch);
  EXPECT_EQ(net::DecodeBatchRequest(nested).status().code(), Code::kProtocolError);

  // Per-op caps still apply inside a batch.
  net::Request big_key;
  big_key.op = net::OpCode::kSet;
  big_key.key.assign(net::kMaxKeyBytes + 1, 'k');
  EXPECT_EQ(net::DecodeBatchRequest(net::EncodeBatchRequest({big_key})).status().code(),
            Code::kProtocolError);

  // Aggregate cap: a frame over kMaxBatchBytes is rejected before any per-op
  // parsing or allocation.
  Bytes huge(5 + net::kMaxBatchBytes + 1, 0);
  huge[0] = static_cast<uint8_t>(net::OpCode::kBatch);
  StoreLe32(huge.data() + 1, 1);
  const Status too_large = net::DecodeBatchRequest(huge).status();
  EXPECT_EQ(too_large.code(), Code::kProtocolError);
  EXPECT_NE(too_large.ToString().find("too large"), std::string::npos);
}

TEST(BatchProtocolTest, MalformedBatchResponsesRejectedTyped) {
  const Bytes valid = net::EncodeBatchResponse({{Code::kOk, "v"}, {Code::kNotFound, ""}});
  ASSERT_TRUE(net::IsBatchResponse(valid));

  // An out-of-range status byte must not be cast into the trusted enum.
  Bytes bad_status = valid;
  bad_status[5] = 200;
  EXPECT_EQ(net::DecodeBatchResponse(bad_status).status().code(), Code::kProtocolError);

  Bytes forged = valid;
  StoreLe32(forged.data() + 1, 1u << 30);
  EXPECT_EQ(net::DecodeBatchResponse(forged).status().code(), Code::kProtocolError);

  Bytes truncated = valid;
  truncated.pop_back();
  EXPECT_EQ(net::DecodeBatchResponse(truncated).status().code(), Code::kProtocolError);
}

TEST(BatchProtocolTest, DecodeFuzzNeverCrashes) {
  // Deterministic mutation fuzz over both batch codecs: every mutant either
  // round-trips or fails with the typed protocol error — no crash, no other
  // code, no attacker-sized allocation.
  Xoshiro256 rng(0xba7f0edULL);
  std::vector<net::Request> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back({net::OpCode::kSet, "fuzz-" + std::to_string(i), std::string(60, 'v'), i});
  }
  const Bytes request_seed = net::EncodeBatchRequest(ops);
  const Bytes response_seed = net::EncodeBatchResponse(
      {{Code::kOk, "abc"}, {Code::kNotFound, ""}, {Code::kOk, std::string(40, 'r')}});
  for (int i = 0; i < 5000; ++i) {
    Bytes mutated = (i % 2 == 0) ? request_seed : response_seed;
    const size_t flips = 1 + rng.NextBelow(8);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    if (rng.NextBelow(4) == 0) {
      mutated.resize(rng.NextBelow(mutated.size() + 1));
    }
    if (i % 2 == 0) {
      Result<std::vector<net::Request>> decoded = net::DecodeBatchRequest(mutated);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.status().code(), Code::kProtocolError) << "mutant " << i;
      }
    } else {
      Result<std::vector<net::Response>> decoded = net::DecodeBatchResponse(mutated);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.status().code(), Code::kProtocolError) << "mutant " << i;
      }
    }
  }
}

// ------------------------------------------------- execution equivalence

// A mixed op sequence with same-key chains (set/get/append/get/increment),
// misses, deletes, and re-inserts — the shapes that would expose a reorder
// or a stale-MAC bug in the batched path.
std::vector<BatchOp> MixedOps() {
  std::vector<BatchOp> ops;
  for (int i = 0; i < 24; ++i) {
    const std::string key = "k" + std::to_string(i % 8);
    switch (i % 6) {
      case 0:
        ops.push_back({BatchOpType::kSet, key, std::to_string(i), 0});
        break;
      case 1:
        ops.push_back({BatchOpType::kGet, key, "", 0});
        break;
      case 2:
        ops.push_back({BatchOpType::kAppend, key, "0", 0});
        break;
      case 3:
        ops.push_back({BatchOpType::kIncrement, key, "", 7});
        break;
      case 4:
        ops.push_back({BatchOpType::kDelete, key, "", 0});
        break;
      default:
        ops.push_back({BatchOpType::kGet, "missing-" + std::to_string(i), "", 0});
        break;
    }
  }
  return ops;
}

TEST(BatchEquivalenceTest, BatchedMatchesSequentialIncludingMacHashes) {
  // Two enclaves with the same DRBG seed and the same store master key draw
  // identical IV streams when the op (and thus draw) order matches — so a
  // correct batched path must produce BYTE-IDENTICAL secure metadata (keys +
  // the full MAC bucket hash array) to the sequential one.
  shieldstore::Options options = SmallOptions();
  options.master_key = Bytes(32, 0x42);

  sgx::Enclave enclave_seq(TestEnclaveConfig("batch-equivalence"));
  sgx::Enclave enclave_batch(TestEnclaveConfig("batch-equivalence"));
  Store sequential(enclave_seq, options);
  Store batched(enclave_batch, options);

  const std::vector<BatchOp> ops = MixedOps();
  std::vector<BatchOpResult> seq_results;
  seq_results.reserve(ops.size());
  for (const BatchOp& op : ops) {
    seq_results.push_back(kv::ExecuteSingleOp(sequential, op));
  }
  const std::vector<BatchOpResult> batch_results = batched.ExecuteBatch(ops);

  ASSERT_EQ(batch_results.size(), seq_results.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(batch_results[i].status.code(), seq_results[i].status.code()) << "op " << i;
    EXPECT_EQ(batch_results[i].value, seq_results[i].value) << "op " << i;
  }
  EXPECT_EQ(batched.Size(), sequential.Size());
  EXPECT_EQ(batched.ExportSecureMetadata(), sequential.ExportSecureMetadata());

  // The deferred MAC recomputation left a self-consistent table: both the
  // cheap hash check and the full chain audit pass.
  EXPECT_TRUE(batched.VerifyFullIntegrity().ok());
  EXPECT_TRUE(batched.Scrub().status.ok());
  EXPECT_TRUE(sequential.VerifyFullIntegrity().ok());
}

TEST(BatchEquivalenceTest, PartitionGroupedExecutionMatchesSequentialState) {
  sgx::Enclave enclave_a(TestEnclaveConfig("batch-part-a"));
  sgx::Enclave enclave_b(TestEnclaveConfig("batch-part-b"));
  PartitionedStore sequential(enclave_a, SmallOptions(), 4);
  PartitionedStore batched(enclave_b, SmallOptions(), 4);

  const std::vector<BatchOp> ops = MixedOps();
  std::vector<BatchOpResult> seq_results;
  for (const BatchOp& op : ops) {
    seq_results.push_back(kv::ExecuteSingleOp(sequential, op));
  }
  const std::vector<BatchOpResult> batch_results = batched.ExecuteBatch(ops);

  // Partition grouping reorders across partitions, which commutes: per-op
  // results and the final state must still match sequential execution.
  ASSERT_EQ(batch_results.size(), seq_results.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(batch_results[i].status.code(), seq_results[i].status.code()) << "op " << i;
    EXPECT_EQ(batch_results[i].value, seq_results[i].value) << "op " << i;
  }
  auto dump = [](PartitionedStore& store) {
    std::map<std::string, std::string> out;
    for (size_t p = 0; p < store.num_partitions(); ++p) {
      EXPECT_TRUE(store.partition(p)
                      .ForEachDecrypted([&](std::string_view key, std::string_view value) {
                        out[std::string(key)] = std::string(value);
                        return Status::Ok();
                      })
                      .ok());
    }
    return out;
  };
  EXPECT_EQ(dump(batched), dump(sequential));
  for (size_t p = 0; p < batched.num_partitions(); ++p) {
    EXPECT_TRUE(batched.partition(p).VerifyFullIntegrity().ok()) << "partition " << p;
  }
}

TEST(BatchEquivalenceTest, MidBatchFailuresLeaveConsistentMacState) {
  sgx::Enclave enclave(TestEnclaveConfig("batch-midfail"));
  Store store(enclave, SmallOptions());
  ASSERT_TRUE(store.Set("n", "not-a-number").ok());

  // Failing ops interleaved with succeeding mutations: the batch scope must
  // still recompute every dirty bucket set at the end.
  const std::vector<BatchOp> ops = {
      {BatchOpType::kSet, "a", "1", 0},          {BatchOpType::kGet, "missing", "", 0},
      {BatchOpType::kIncrement, "n", "", 5},     {BatchOpType::kSet, "b", "2", 0},
      {BatchOpType::kDelete, "missing-2", "", 0}, {BatchOpType::kAppend, "a", "x", 0},
  };
  const std::vector<BatchOpResult> results = store.ExecuteBatch(ops);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), Code::kNotFound);
  EXPECT_EQ(results[2].status.code(), Code::kInvalidArgument);
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_EQ(results[4].status.code(), Code::kNotFound);
  EXPECT_TRUE(results[5].status.ok());
  EXPECT_EQ(results[5].value, "1x");
  EXPECT_TRUE(store.VerifyFullIntegrity().ok());
  EXPECT_TRUE(store.Scrub().status.ok());
}

TEST(BatchEquivalenceTest, QuarantinedPartitionFailsOnlyItsOps) {
  sgx::Enclave enclave(TestEnclaveConfig("batch-quarantine"));
  PartitionedStore store(enclave, SmallOptions(), 4);

  // Find keys on partition 0 and on some other partition.
  std::vector<std::string> p0_keys, other_keys;
  for (int i = 0; p0_keys.size() < 2 || other_keys.size() < 2; ++i) {
    const std::string key = "q" + std::to_string(i);
    (store.PartitionOf(key) == 0 ? p0_keys : other_keys).push_back(key);
  }
  ASSERT_FALSE(store
                   .WithPartitionLocked(0,
                                        [](Store&) {
                                          return Status(Code::kIntegrityFailure,
                                                        "synthetic violation");
                                        })
                   .ok());
  ASSERT_TRUE(store.IsQuarantined(0));

  const std::vector<BatchOp> ops = {
      {BatchOpType::kSet, p0_keys[0], "v", 0},
      {BatchOpType::kSet, other_keys[0], "v", 0},
      {BatchOpType::kGet, p0_keys[1], "", 0},
      {BatchOpType::kSet, other_keys[1], "v", 0},
  };
  const std::vector<BatchOpResult> results = store.ExecuteBatch(ops);
  EXPECT_EQ(results[0].status.code(), Code::kPartitionRecovering);
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_EQ(results[2].status.code(), Code::kPartitionRecovering);
  EXPECT_TRUE(results[3].status.ok());
}

// ------------------------------------------------ WAL batched durability

class BatchWalTest : public ::testing::Test {
 protected:
  BatchWalTest() : enclave_(TestEnclaveConfig("batch-wal-a")) {
    dir_ = ::testing::TempDir() + "/batch_wal_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = dir_ + "/counters.bin";
    counter_opts.increment_cost_cycles = 0;
    counters_ = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
    sealer_ = std::make_unique<sgx::SealingService>(AsBytes("fuse"), enclave_.measurement());
  }
  ~BatchWalTest() override { std::filesystem::remove_all(dir_); }

  shieldstore::OpLogOptions LogOptions() const {
    shieldstore::OpLogOptions o;
    o.path = dir_ + "/wal.log";
    return o;
  }

  std::map<std::string, std::string> RestartAndDump(size_t partitions,
                                                    const shieldstore::OpLogOptions& opts) {
    sgx::Enclave enclave2(TestEnclaveConfig("batch-wal-b"));
    PartitionedStore store2(enclave2, SmallOptions(), partitions);
    WriteAheadStore wal2(store2, *sealer_, *counters_, opts);
    EXPECT_TRUE(wal2.Open().ok());
    const Status restored = wal2.RestoreFromDisk(dir_ + "/snapshots");
    EXPECT_TRUE(restored.ok()) << restored.ToString();
    std::map<std::string, std::string> dump;
    for (size_t p = 0; p < store2.num_partitions(); ++p) {
      EXPECT_TRUE(store2.partition(p)
                      .ForEachDecrypted([&](std::string_view key, std::string_view value) {
                        dump[std::string(key)] = std::string(value);
                        return Status::Ok();
                      })
                      .ok());
    }
    return dump;
  }

  sgx::Enclave enclave_;
  std::string dir_;
  std::unique_ptr<sgx::MonotonicCounterService> counters_;
  std::unique_ptr<sgx::SealingService> sealer_;
};

TEST_F(BatchWalTest, BatchedDurableAcksSurviveRestart) {
  PartitionedStore store(enclave_, SmallOptions(), 4);
  shieldstore::OpLogOptions log_opts = LogOptions();
  log_opts.group_commit_window_us = 50;
  log_opts.group_commit_ops = 8;
  WriteAheadStore wal(store, *sealer_, *counters_, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  // In durable-window mode a batched ack is exactly as durable as N singleton
  // acks: the state on disk right after ExecuteBatch returns must replay in
  // full — including ops that span every shard and delete earlier sets.
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 5; ++round) {
    std::vector<BatchOp> ops;
    for (int i = 0; i < 16; ++i) {
      const std::string key = "b" + std::to_string(round) + "-" + std::to_string(i);
      ops.push_back({BatchOpType::kSet, key, "v" + std::to_string(i), 0});
    }
    if (round > 0) {
      ops.push_back({BatchOpType::kDelete, "b" + std::to_string(round - 1) + "-0", "", 0});
      ops.push_back({BatchOpType::kAppend, "b" + std::to_string(round - 1) + "-1", "+", 0});
    }
    const std::vector<BatchOpResult> results = wal.ExecuteBatch(ops);
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << "round " << round << " op " << i;
      switch (ops[i].type) {
        case BatchOpType::kSet:
          acked[ops[i].key] = ops[i].value;
          break;
        case BatchOpType::kDelete:
          acked.erase(ops[i].key);
          break;
        case BatchOpType::kAppend:
          acked[ops[i].key] = results[i].value;
          break;
        default:
          break;
      }
    }
  }
  EXPECT_EQ(RestartAndDump(4, log_opts), acked);
}

TEST_F(BatchWalTest, FailedOpsAreNotLoggedAndGetsSkipTheLog) {
  PartitionedStore store(enclave_, SmallOptions(), 2);
  shieldstore::OpLogOptions log_opts = LogOptions();
  log_opts.group_commit_window_us = 50;
  WriteAheadStore wal(store, *sealer_, *counters_, log_opts);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Set("n", "NaN").ok());

  const uint64_t records_before = wal.Stats().records_logged;
  const std::vector<BatchOp> ops = {
      {BatchOpType::kGet, "n", "", 0},            // read: never logged
      {BatchOpType::kDelete, "missing", "", 0},   // fails: never logged
      {BatchOpType::kIncrement, "n", "", 1},      // fails (NaN): never logged
      {BatchOpType::kSet, "ok", "1", 0},          // logged
  };
  const std::vector<BatchOpResult> results = wal.ExecuteBatch(ops);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].value, "NaN");
  EXPECT_EQ(results[1].status.code(), Code::kNotFound);
  EXPECT_EQ(results[2].status.code(), Code::kInvalidArgument);
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_EQ(wal.Stats().records_logged - records_before, 1u);

  // A mutation-free batch takes no shard locks and appends nothing.
  const uint64_t records_mid = wal.Stats().records_logged;
  const std::vector<BatchOpResult> reads =
      wal.ExecuteBatch({{BatchOpType::kGet, "ok", "", 0}, {BatchOpType::kGet, "n", "", 0}});
  EXPECT_EQ(reads[0].value, "1");
  EXPECT_EQ(reads[1].value, "NaN");
  EXPECT_EQ(wal.Stats().records_logged, records_mid);

  EXPECT_EQ(RestartAndDump(2, log_opts),
            (std::map<std::string, std::string>{{"n", "NaN"}, {"ok", "1"}}));
}

// --------------------------------------------------------- end to end

class BatchNetTest : public ::testing::Test {
 protected:
  BatchNetTest()
      : enclave_(TestEnclaveConfig("batch-net")),
        authority_(AsBytes("ias-root")),
        store_(enclave_, SmallOptions(), 2) {}

  void StartServer(net::ServerOptions options) {
    server_ = std::make_unique<net::Server>(enclave_, store_, authority_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void RunBatchMix() {
    net::Client client(authority_, enclave_.measurement());
    ASSERT_TRUE(client.Connect(server_->port()).ok());

    // MSet + MGet round trip.
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<std::string> keys;
    for (int i = 0; i < 64; ++i) {
      pairs.emplace_back("mk" + std::to_string(i), "mv" + std::to_string(i));
      keys.push_back("mk" + std::to_string(i));
    }
    ASSERT_TRUE(client.MSet(pairs).ok());
    Result<std::vector<net::Response>> got = client.MGet(keys);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ((*got)[i].status, Code::kOk);
      EXPECT_EQ((*got)[i].value, pairs[i].second);
    }

    // A mixed frame: per-op statuses come back positionally, including
    // failures, and one frame carries all of them.
    std::vector<net::Request> mixed;
    mixed.push_back({net::OpCode::kSet, "counter", "10", 0});
    mixed.push_back({net::OpCode::kIncrement, "counter", "", 5});
    mixed.push_back({net::OpCode::kGet, "no-such-key", "", 0});
    mixed.push_back({net::OpCode::kAppend, "mk0", "!", 0});
    mixed.push_back({net::OpCode::kGet, "mk0", "", 0});
    mixed.push_back({net::OpCode::kDelete, "mk1", "", 0});
    mixed.push_back({net::OpCode::kPing, "", "", 0});
    Result<std::vector<net::Response>> r = client.ExecuteBatch(mixed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->size(), mixed.size());
    EXPECT_EQ((*r)[0].status, Code::kOk);
    EXPECT_EQ((*r)[1].status, Code::kOk);
    EXPECT_EQ((*r)[1].value, "15");
    EXPECT_EQ((*r)[2].status, Code::kNotFound);
    EXPECT_EQ((*r)[3].status, Code::kOk);
    EXPECT_EQ((*r)[4].status, Code::kOk);
    EXPECT_EQ((*r)[4].value, "mv0!");
    EXPECT_EQ((*r)[5].status, Code::kOk);
    EXPECT_EQ((*r)[6].status, Code::kOk);
    EXPECT_EQ(client.Get("mk1").status().code(), Code::kNotFound);
  }

  sgx::Enclave enclave_;
  sgx::AttestationAuthority authority_;
  PartitionedStore store_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(BatchNetTest, BatchedFramesOverEcalls) {
  StartServer({});
  RunBatchMix();
  // 3 batch frames (MSet, MGet, mixed) of 64 + 64 + 7 sub-ops.
  EXPECT_EQ(server_->batches_served(), 3u);
  EXPECT_EQ(server_->batch_ops_served(), 135u);
  EXPECT_EQ(server_->crossings_saved(), 132u);
}

TEST_F(BatchNetTest, BatchedFramesOverHotCalls) {
  net::ServerOptions options;
  options.use_hotcalls = true;
  options.enclave_workers = 2;
  options.hotcall_idle_sleep_us = 20;  // exercise the spin-then-sleep path
  StartServer(options);
  RunBatchMix();
  EXPECT_EQ(server_->batches_served(), 3u);
  EXPECT_EQ(server_->crossings_saved(), 132u);
}

TEST_F(BatchNetTest, ClientRejectsInvalidBatchesLocally) {
  StartServer({});
  net::Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  EXPECT_EQ(client.ExecuteBatch({}).status().code(), Code::kProtocolError);
  std::vector<net::Request> too_many(net::kMaxBatchOps + 1);
  for (auto& op : too_many) {
    op = {net::OpCode::kPing, "", "", 0};
  }
  EXPECT_EQ(client.ExecuteBatch(too_many).status().code(), Code::kProtocolError);
  // The connection is still usable — nothing was sent.
  EXPECT_TRUE(client.Set("still", "alive").ok());
}

TEST_F(BatchNetTest, SmuggledBatchOpcodeInSingleFrameRejected) {
  StartServer({});
  net::Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  // A single-request frame whose opcode says kBatch must be answered with a
  // typed protocol error, not dispatched.
  net::Request smuggled;
  smuggled.op = net::OpCode::kBatch;
  smuggled.key = "k";
  Result<net::Response> response = client.Execute(smuggled);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, Code::kProtocolError);
}

}  // namespace
}  // namespace shield
