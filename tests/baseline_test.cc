// Baseline store tests: NoSGX and naive-enclave placements, the paging
// cliff, the memcached-like store, and the generic partitioned facade.
#include <gtest/gtest.h>

#include <thread>

#include "src/baseline/baseline_store.h"
#include "src/baseline/memcached_like.h"
#include "src/common/cycles.h"
#include "src/kv/partition.h"

namespace shield::baseline {
namespace {

sgx::EnclaveConfig FastEnclave(size_t epc_bytes, size_t reserve) {
  sgx::EnclaveConfig c;
  c.epc.epc_bytes = epc_bytes;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = reserve;
  c.rng_seed = ToBytes("baseline-test");
  return c;
}

TEST(BaselineStoreTest, NoSgxBasicOps) {
  BaselineStore store(nullptr, Placement::kNoSgx, 1024);
  EXPECT_TRUE(store.Set("a", "1").ok());
  EXPECT_TRUE(store.Set("b", "2").ok());
  EXPECT_EQ(store.Get("a").value(), "1");
  EXPECT_TRUE(store.Set("a", "longer-value").ok());
  EXPECT_EQ(store.Get("a").value(), "longer-value");
  EXPECT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.Get("a").status().code(), Code::kNotFound);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_TRUE(store.Append("b", "3").ok());
  EXPECT_EQ(store.Get("b").value(), "23");
}

TEST(BaselineStoreTest, EnclavePlacementCorrectness) {
  sgx::Enclave enclave(FastEnclave(4u << 20, 64u << 20));
  BaselineStore store(&enclave, Placement::kEnclaveNaive, 1024);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(store.Get("key" + std::to_string(i)).value(), "value" + std::to_string(i));
  }
}

TEST(BaselineStoreTest, EnclaveTableFaultsWhenBeyondEpc) {
  // Table much larger than EPC => uniform gets keep faulting (Figure 3's
  // cliff); table within EPC => faults stop after warmup.
  sgx::Enclave small_epc(FastEnclave(64 * 4096, 256u << 20));
  BaselineStore store(&small_epc, Placement::kEnclaveNaive, 4096);
  const std::string value(512, 'v');
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), value).ok());
  }
  small_epc.epc().ResetStats();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(store.Get("key" + std::to_string(i * 2654435761u % 4000)).ok());
  }
  EXPECT_GT(small_epc.epc().stats().faults, 1000u) << "oversized table must thrash";

  sgx::Enclave big_epc(FastEnclave(64u << 20, 256u << 20));
  BaselineStore fits(&big_epc, Placement::kEnclaveNaive, 4096);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(fits.Set("key" + std::to_string(i), value).ok());
  }
  big_epc.epc().ResetStats();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(fits.Get("key" + std::to_string(i * 2654435761u % 4000)).ok());
  }
  EXPECT_EQ(big_epc.epc().stats().faults, 0u) << "resident table must not fault";
}

TEST(MemcachedLikeTest, BasicOpsInsecureMode) {
  MemcachedOptions options;
  options.graphene = false;
  options.start_maintainer = false;
  MemcachedLikeStore store(nullptr, options);
  EXPECT_TRUE(store.Set("k", "v").ok());
  EXPECT_EQ(store.Get("k").value(), "v");
  EXPECT_TRUE(store.Set("k", std::string(500, 'x')).ok());
  EXPECT_EQ(store.Get("k").value(), std::string(500, 'x'));
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(store.Get("k").status().code(), Code::kNotFound);
}

TEST(MemcachedLikeTest, GrapheneModeWithMaintainer) {
  sgx::Enclave enclave(FastEnclave(16u << 20, 128u << 20));
  MemcachedOptions options;
  options.graphene = true;
  options.libos_op_overhead_cycles = 0;
  options.start_maintainer = true;
  options.maintenance_interval_us = 50;
  MemcachedLikeStore store(&enclave, options);
  // Concurrent workers racing the maintainer on the global lock.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &failures, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "t" + std::to_string(t) + "k" + std::to_string(i);
        if (!store.Set(key, "v" + std::to_string(i)).ok()) {
          ++failures;
        }
        auto got = store.Get(key);
        if (!got.ok() || got.value() != "v" + std::to_string(i)) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.Size(), 2000u);
}

TEST(MemcachedLikeTest, LibOsOverheadCharged) {
  sgx::Enclave enclave(FastEnclave(16u << 20, 64u << 20));
  MemcachedOptions slow;
  slow.graphene = true;
  slow.libos_op_overhead_cycles = 100'000;
  slow.start_maintainer = false;
  MemcachedLikeStore store(&enclave, slow);
  ASSERT_TRUE(store.Set("k", "v").ok());
  const uint64_t t0 = ReadCycleCounter();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Get("k").ok());
  }
  const uint64_t elapsed = ReadCycleCounter() - t0;
  EXPECT_GE(elapsed, 50u * 100'000 * 9 / 10);
}

TEST(PartitionedKvTest, RoutesAndAggregates) {
  std::vector<std::unique_ptr<BaselineStore>> parts;
  for (int i = 0; i < 4; ++i) {
    parts.push_back(std::make_unique<BaselineStore>(nullptr, Placement::kNoSgx, 64));
  }
  crypto::SipHashKey route_key{};
  route_key[0] = 42;
  kv::PartitionedKv<BaselineStore> store(route_key, std::move(parts));
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), std::to_string(i)).ok());
  }
  EXPECT_EQ(store.Size(), 400u);
  size_t direct_total = 0;
  for (size_t p = 0; p < store.num_partitions(); ++p) {
    direct_total += store.partition(p).Size();
    EXPECT_GT(store.partition(p).Size(), 50u) << "partitioning should be balanced";
  }
  EXPECT_EQ(direct_total, 400u);
  for (int i = 0; i < 400; ++i) {
    ASSERT_EQ(store.Get("key" + std::to_string(i)).value(), std::to_string(i));
  }
}

}  // namespace
}  // namespace shield::baseline
