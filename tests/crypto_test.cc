// Validates every cryptographic primitive against published test vectors,
// then property-tests round-trips and tamper detection.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"
#include "src/crypto/cmac.h"
#include "src/crypto/ctr.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/crypto/siphash.h"
#include "src/crypto/x25519.h"

namespace shield::crypto {
namespace {

Bytes H(std::string_view hex) {
  Bytes b = HexDecode(hex);
  EXPECT_FALSE(b.empty() && !hex.empty()) << "bad hex literal in test";
  return b;
}

// ---------------------------------------------------------------- AES-128

TEST(Aes128Test, Fips197AppendixC) {
  const Bytes key = H("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = H("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(ByteSpan(back, 16)), HexEncode(pt));
}

TEST(Aes128Test, Sp80038aEcbVector) {
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = H("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128Test, EncryptDecryptRoundTripRandomBlocks) {
  Drbg drbg(AsBytes("aes-roundtrip"));
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t key[16], pt[16], ct[16], back[16];
    drbg.Fill(MutableByteSpan(key, 16));
    drbg.Fill(MutableByteSpan(pt, 16));
    Aes128 aes(ByteSpan(key, 16));
    aes.EncryptBlock(pt, ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(0, std::memcmp(pt, back, 16));
  }
}

// ---------------------------------------------------------------- AES-CTR

TEST(AesCtrTest, Sp80038aCtrVector) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes ctr = H("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = H(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expect =
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee";
  Bytes ct(pt.size());
  AesCtrTransform(key, ctr.data(), 128, pt, ct);
  EXPECT_EQ(HexEncode(ct), expect);
  // CTR decryption is the same transform.
  Bytes back(ct.size());
  AesCtrTransform(key, ctr.data(), 128, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(AesCtrTest, InPlaceAndUnalignedLengths) {
  Drbg drbg(AsBytes("ctr-lengths"));
  uint8_t key[16], ctr[16];
  drbg.Fill(MutableByteSpan(key, 16));
  drbg.Fill(MutableByteSpan(ctr, 16));
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 33u, 100u, 4096u}) {
    Bytes data(len);
    drbg.Fill(data);
    Bytes original = data;
    AesCtrTransform(ByteSpan(key, 16), ctr, 32, data, data);  // in place
    if (len > 0) {
      EXPECT_NE(data, original) << len;
    }
    AesCtrTransform(ByteSpan(key, 16), ctr, 32, data, data);
    EXPECT_EQ(data, original) << len;
  }
}

TEST(AesCtrTest, CounterWindowWraps) {
  uint8_t ctr[16];
  std::memset(ctr, 0xFF, sizeof(ctr));
  IncrementCounter(ctr, 32, 1);
  // Low 32 bits wrap to zero; upper bits untouched.
  EXPECT_EQ(HexEncode(ByteSpan(ctr, 16)), "ffffffffffffffffffffffff00000000");
  IncrementCounter(ctr, 32, 0x1'0000'0005ULL);  // wraps within window again
  EXPECT_EQ(HexEncode(ByteSpan(ctr, 16)), "ffffffffffffffffffffffff00000005");
}

TEST(AesCtrTest, DistinctCountersGiveDistinctKeystreams) {
  const Bytes key = H("000102030405060708090a0b0c0d0e0f");
  uint8_t c1[16] = {};
  uint8_t c2[16] = {};
  c2[0] = 1;  // differs in the non-incrementing (IV) part
  Bytes zeros(64, 0);
  Bytes s1(64), s2(64);
  AesCtrTransform(key, c1, 32, zeros, s1);
  AesCtrTransform(key, c2, 32, zeros, s2);
  EXPECT_NE(s1, s2);
}

// ---------------------------------------------------------------- AES-CMAC

TEST(CmacTest, Rfc4493Vectors) {
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  struct Case {
    const char* msg_hex;
    const char* tag_hex;
  };
  const Case cases[] = {
      {"", "bb1d6929e95937287fa37d129b756746"},
      {"6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
      {"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
       "dfa66747de9ae63030ca32611497c827"},
      {"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411"
       "e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
       "51f0bebf7e3b9d92fc49741779363cfe"},
  };
  for (const Case& c : cases) {
    const Mac tag = CmacSign(key, H(c.msg_hex));
    EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())), c.tag_hex);
    EXPECT_TRUE(CmacVerify(key, H(c.msg_hex), ByteSpan(tag.data(), tag.size())));
  }
}

TEST(CmacTest, StreamingMatchesOneShotAtEverySplit) {
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes msg(97);
  Drbg drbg(AsBytes("cmac-split"));
  drbg.Fill(msg);
  const Mac expect = CmacSign(key, msg);
  Cmac cmac(key);
  for (size_t split = 0; split <= msg.size(); ++split) {
    cmac.Reset();
    cmac.Update(ByteSpan(msg.data(), split));
    cmac.Update(ByteSpan(msg.data() + split, msg.size() - split));
    const Mac got = cmac.Finalize();
    EXPECT_EQ(got, expect) << "split at " << split;
  }
}

TEST(CmacTest, RejectsTamperedTag) {
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes msg = ToBytes("attack at dawn");
  Mac tag = CmacSign(key, msg);
  tag[5] ^= 0x01;
  EXPECT_FALSE(CmacVerify(key, msg, ByteSpan(tag.data(), tag.size())));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha256Hash(AsBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexEncode(Sha256Hash(AsBytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexEncode(Sha256Hash(
                AsBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    sha.Update(AsBytes(chunk));
  }
  EXPECT_EQ(HexEncode(sha.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Bytes msg(300);
  Drbg drbg(AsBytes("sha-split"));
  drbg.Fill(msg);
  const Sha256Digest expect = Sha256Hash(msg);
  for (size_t split : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 128u, 299u, 300u}) {
    Sha256 sha;
    sha.Update(ByteSpan(msg.data(), split));
    sha.Update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(sha.Finalize(), expect) << split;
  }
}

// ---------------------------------------------------------------- HMAC/HKDF

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key, AsBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexEncode(HmacSha256(AsBytes("Jefe"), AsBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = H("000102030405060708090a0b0c");
  const Bytes info = H("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// ---------------------------------------------------------------- SipHash

TEST(SipHashTest, ReferenceVectors) {
  SipHashKey key;
  for (int i = 0; i < 16; ++i) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  // First entries of the reference implementation's vectors_sip64 table
  // (input = 0x00, 0x0001, ... prefixes of increasing length).
  const uint64_t kExpect[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  Bytes input;
  for (size_t len = 0; len < std::size(kExpect); ++len) {
    EXPECT_EQ(SipHash24(key, input), kExpect[len]) << "len " << len;
    input.push_back(static_cast<uint8_t>(len));
  }
}

TEST(SipHashTest, KeyedAvalanche) {
  SipHashKey k1{}, k2{};
  k2[0] = 1;
  const Bytes msg = ToBytes("bucket-index-input");
  EXPECT_NE(SipHash24(k1, msg), SipHash24(k2, msg));
}

TEST(SipHashTest, DistributesAcrossBuckets) {
  SipHashKey key{};
  key[3] = 0xAB;
  constexpr size_t kBuckets = 64;
  size_t counts[kBuckets] = {};
  for (uint64_t i = 0; i < 64000; ++i) {
    uint8_t k[8];
    StoreLe64(k, i);
    counts[SipHash24(key, ByteSpan(k, 8)) % kBuckets]++;
  }
  for (size_t c : counts) {
    EXPECT_GT(c, 700u);  // expectation 1000, loose 30% band
    EXPECT_LT(c, 1300u);
  }
}

// ---------------------------------------------------------------- ChaCha20

TEST(ChaCha20Test, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2 test vector.
  const Bytes key = H("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = H("000000090000004a00000000");
  uint8_t out[64];
  ChaCha20Block(key.data(), nonce.data(), 1, out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(DrbgTest, DeterministicSeedIsReproducible) {
  Drbg a(AsBytes("seed"));
  Drbg b(AsBytes("seed"));
  Bytes ba(1000), bb(1000);
  a.Fill(ba);
  b.Fill(bb);
  EXPECT_EQ(ba, bb);
  Drbg c(AsBytes("other-seed"));
  Bytes bc(1000);
  c.Fill(bc);
  EXPECT_NE(ba, bc);
}

TEST(DrbgTest, OsSeededInstancesDiffer) {
  Drbg a, b;
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(DrbgTest, SurvivesRekeyBoundary) {
  Drbg a(AsBytes("rekey"));
  Bytes big(1 << 17);  // crosses the 1024-block rekey threshold
  a.Fill(big);
  // No assertion beyond "did not crash and produced non-constant output".
  EXPECT_NE(big.front(), big.back());
}

// ---------------------------------------------------------------- X25519

TEST(X25519Test, Rfc7748Vector1) {
  X25519Key scalar, point;
  const Bytes s = H("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u = H("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  std::memcpy(scalar.data(), s.data(), 32);
  std::memcpy(point.data(), u.data(), 32);
  const X25519Key out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), 32)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2) {
  X25519Key scalar, point;
  const Bytes s = H("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const Bytes u = H("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  std::memcpy(scalar.data(), s.data(), 32);
  std::memcpy(point.data(), u.data(), 32);
  const X25519Key out = X25519(scalar, point);
  EXPECT_EQ(HexEncode(ByteSpan(out.data(), 32)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, DiffieHellmanAgreement) {
  Drbg drbg(AsBytes("x25519-dh"));
  for (int trial = 0; trial < 8; ++trial) {
    X25519Key a, b;
    drbg.Fill(MutableByteSpan(a.data(), a.size()));
    drbg.Fill(MutableByteSpan(b.data(), b.size()));
    const X25519Key pub_a = X25519BasePoint(a);
    const X25519Key pub_b = X25519BasePoint(b);
    const X25519Key shared_ab = X25519(a, pub_b);
    const X25519Key shared_ba = X25519(b, pub_a);
    EXPECT_EQ(shared_ab, shared_ba);
    X25519Key zero{};
    EXPECT_NE(shared_ab, zero);
  }
}

// ---------------------------------------------------------------- Merkle

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  MerkleTree tree(8);
  const Sha256Digest initial_root = tree.Root();
  for (size_t i = 0; i < 8; ++i) {
    MerkleTree t2(8);
    Sha256Digest leaf{};
    leaf[0] = static_cast<uint8_t>(i + 1);
    t2.UpdateLeaf(i, leaf);
    EXPECT_NE(t2.Root(), initial_root) << i;
  }
}

TEST(MerkleTest, ProofVerifies) {
  MerkleTree tree(16);
  Drbg drbg(AsBytes("merkle"));
  for (size_t i = 0; i < 16; ++i) {
    Sha256Digest leaf;
    drbg.Fill(MutableByteSpan(leaf.data(), leaf.size()));
    tree.UpdateLeaf(i, leaf);
  }
  for (size_t i = 0; i < 16; ++i) {
    const auto proof = tree.Prove(i);
    EXPECT_EQ(proof.size(), tree.height());
    EXPECT_TRUE(MerkleTree::Verify(tree.Root(), i, tree.Leaf(i), proof));
    // A forged leaf must not verify.
    Sha256Digest forged = tree.Leaf(i);
    forged[7] ^= 0x80;
    EXPECT_FALSE(MerkleTree::Verify(tree.Root(), i, forged, proof));
  }
}

TEST(MerkleTest, ProofForWrongIndexFails) {
  MerkleTree tree(8);
  Drbg drbg(AsBytes("merkle-idx"));
  for (size_t i = 0; i < 8; ++i) {
    Sha256Digest leaf;
    drbg.Fill(MutableByteSpan(leaf.data(), leaf.size()));
    tree.UpdateLeaf(i, leaf);
  }
  const auto proof = tree.Prove(3);
  EXPECT_FALSE(MerkleTree::Verify(tree.Root(), 4, tree.Leaf(4), proof));
}

// ------------------------------------------- hardware/table backend parity
//
// The AES-NI backend must be byte-identical to the table reference for every
// primitive built on it. Hardware-dependent tests skip cleanly on machines
// (or -DSHIELD_DISABLE_AESNI builds) without AES-NI; batch-CMAC-vs-serial
// runs on the table backend so it exercises the lane logic everywhere.

TEST(BackendTest, DispatchReportsCoherently) {
  const AesBackend active = ActiveAesBackend();
  if (!AesNiAvailable()) {
    EXPECT_EQ(active, AesBackend::kTable);
  }
  EXPECT_STREQ(AesBackendName(AesBackend::kTable), "table-aes");
  EXPECT_STREQ(AesBackendName(AesBackend::kAesNi), "aes-ni");
  // Requesting hardware degrades to the table backend rather than failing
  // when the CPU lacks it.
  const Bytes key = H("000102030405060708090a0b0c0d0e0f");
  Aes128 forced_soft(key, AesBackend::kTable);
  EXPECT_EQ(forced_soft.backend(), AesBackend::kTable);
  Aes128 want_hw(key, AesBackend::kAesNi);
  EXPECT_EQ(want_hw.backend(),
            AesNiAvailable() ? AesBackend::kAesNi : AesBackend::kTable);
}

TEST(BackendTest, HardwareBlockMatchesTable) {
  if (!AesNiAvailable()) {
    GTEST_SKIP() << "AES-NI not available";
  }
  Drbg drbg(AsBytes("backend-block"));
  for (int trial = 0; trial < 100; ++trial) {
    uint8_t key[16], pt[16], hw_ct[16], sw_ct[16], back[16];
    drbg.Fill(MutableByteSpan(key, 16));
    drbg.Fill(MutableByteSpan(pt, 16));
    Aes128 hw(ByteSpan(key, 16), AesBackend::kAesNi);
    Aes128 sw(ByteSpan(key, 16), AesBackend::kTable);
    hw.EncryptBlock(pt, hw_ct);
    sw.EncryptBlock(pt, sw_ct);
    EXPECT_EQ(0, std::memcmp(hw_ct, sw_ct, 16));
    hw.DecryptBlock(hw_ct, back);  // exercises the AESIMC-inverted schedule
    EXPECT_EQ(0, std::memcmp(back, pt, 16));
  }
}

TEST(BackendTest, HardwareMultiBlockMatchesTable) {
  if (!AesNiAvailable()) {
    GTEST_SKIP() << "AES-NI not available";
  }
  Drbg drbg(AsBytes("backend-blocks"));
  uint8_t key[16];
  drbg.Fill(MutableByteSpan(key, 16));
  Aes128 hw(ByteSpan(key, 16), AesBackend::kAesNi);
  Aes128 sw(ByteSpan(key, 16), AesBackend::kTable);
  // Counts straddling the 8-wide interleave boundary, including the tail.
  for (size_t count : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 31u}) {
    Bytes blocks(count * 16);
    drbg.Fill(blocks);
    Bytes hw_out = blocks;
    Bytes sw_out = blocks;
    hw.EncryptBlocks(hw_out.data(), count);
    sw.EncryptBlocks(sw_out.data(), count);
    EXPECT_EQ(hw_out, sw_out) << count << " blocks";
  }
}

TEST(BackendTest, HardwareCmacRfc4493Vectors) {
  if (!AesNiAvailable()) {
    GTEST_SKIP() << "AES-NI not available";
  }
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  CmacKey hw_key(key, AesBackend::kAesNi);
  struct Case {
    const char* msg_hex;
    const char* tag_hex;
  };
  const Case cases[] = {
      {"", "bb1d6929e95937287fa37d129b756746"},
      {"6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
      {"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
       "dfa66747de9ae63030ca32611497c827"},
      {"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411"
       "e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
       "51f0bebf7e3b9d92fc49741779363cfe"},
  };
  for (const Case& c : cases) {
    Cmac cmac(hw_key);
    cmac.Update(H(c.msg_hex));
    const Mac tag = cmac.Finalize();
    EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())), c.tag_hex);
  }
}

TEST(BackendTest, HardwareStreamingCmacAtEverySplit) {
  if (!AesNiAvailable()) {
    GTEST_SKIP() << "AES-NI not available";
  }
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes msg(97);
  Drbg drbg(AsBytes("cmac-split-hw"));
  drbg.Fill(msg);
  const Mac expect = CmacSign(key, msg);  // table one-shot reference
  CmacKey hw_key(key, AesBackend::kAesNi);
  Cmac cmac(hw_key);
  for (size_t split = 0; split <= msg.size(); ++split) {
    cmac.Reset();
    cmac.Update(ByteSpan(msg.data(), split));
    cmac.Update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(cmac.Finalize(), expect) << "split at " << split;
  }
}

// Batch CMAC must equal per-message serial CMAC regardless of backend, lane
// count, or ragged/multi-part message shapes. Runs on the table backend so
// the lane bookkeeping is covered on every machine.
TEST(BackendTest, BatchCmacMatchesSerial) {
  Drbg drbg(AsBytes("cmac-batch"));
  const Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  CmacKey ckey(key, AesBackend::kTable);
  // Lengths chosen to hit: empty, sub-block, exact block, block+1, and
  // multi-block lanes finishing on different rounds; counts straddle the
  // kCmacBatchLanes boundary.
  const std::vector<size_t> lens = {0, 1, 15, 16, 17, 32, 33, 100, 255, 256, 700};
  for (size_t count : {1u, 3u, 8u, 9u, 11u}) {
    std::vector<Bytes> payloads(count);
    std::vector<CmacMessage> msgs(count);
    for (size_t i = 0; i < count; ++i) {
      payloads[i].resize(lens[i % lens.size()]);
      drbg.Fill(payloads[i]);
      // Split each payload across two parts to exercise gather across
      // part boundaries.
      const size_t cut = payloads[i].size() / 3;
      msgs[i].Append(ByteSpan(payloads[i].data(), cut));
      msgs[i].Append(ByteSpan(payloads[i].data() + cut, payloads[i].size() - cut));
    }
    std::vector<Mac> tags(count);
    CmacSignBatch(ckey, std::span<const CmacMessage>(msgs.data(), count), tags.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(tags[i], CmacSign(key, payloads[i])) << "lane " << i << " of " << count;
    }
  }
}

// Randomized cross-backend fuzz: ciphertext, round-trip, and tags must be
// byte-identical between the table and hardware implementations for random
// keys, lengths, counters, and counter-window widths.
TEST(BackendTest, FuzzEquivalence) {
  if (!AesNiAvailable()) {
    GTEST_SKIP() << "AES-NI not available";
  }
  Drbg drbg(AsBytes("backend-fuzz"));
  const uint32_t inc_bits_choices[] = {32, 64, 128};
  for (int trial = 0; trial < 300; ++trial) {
    uint8_t key[16], ctr[16];
    drbg.Fill(MutableByteSpan(key, 16));
    drbg.Fill(MutableByteSpan(ctr, 16));
    const size_t len = static_cast<size_t>(drbg.NextUint64() % 1501);
    const uint32_t inc_bits = inc_bits_choices[drbg.NextUint64() % 3];
    Bytes pt(len);
    drbg.Fill(pt);

    Aes128 hw(ByteSpan(key, 16), AesBackend::kAesNi);
    Aes128 sw(ByteSpan(key, 16), AesBackend::kTable);
    Bytes hw_ct(len), sw_ct(len), back(len);
    AesCtrTransform(hw, ctr, inc_bits, pt, hw_ct);
    AesCtrTransform(sw, ctr, inc_bits, pt, sw_ct);
    ASSERT_EQ(hw_ct, sw_ct) << "trial " << trial << " len " << len;
    AesCtrTransform(hw, ctr, inc_bits, hw_ct, back);
    ASSERT_EQ(back, pt) << "trial " << trial;

    CmacKey hw_key(ByteSpan(key, 16), AesBackend::kAesNi);
    CmacKey sw_key(ByteSpan(key, 16), AesBackend::kTable);
    Cmac hw_cmac(hw_key);
    hw_cmac.Update(pt);
    Cmac sw_cmac(sw_key);
    sw_cmac.Update(pt);
    ASSERT_EQ(hw_cmac.Finalize(), sw_cmac.Finalize()) << "trial " << trial;
  }
}

// ------------------------------------------------------- constant-time cmp

TEST(ConstantTimeTest, Basics) {
  const Bytes a = ToBytes("0123456789abcdef");
  Bytes b = a;
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  b[15] ^= 1;
  EXPECT_FALSE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteSpan(a.data(), 15)));
}

}  // namespace
}  // namespace shield::crypto
