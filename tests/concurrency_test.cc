// Concurrency battery: writer threads, reader threads, a background healer,
// and a background adversary all hammer one self-healing store at once. Run
// under SHIELD_SANITIZE=thread (scripts/check.sh does) — the point of these
// tests is as much "no data race" as "no lost acknowledged write".
//
// Correctness model per key (each key owned by exactly one writer thread):
// after the store drains and heals, the key's value must be its last
// acknowledged value or one attempted after that ack (an in-flight write may
// or may not have landed); it must never be an older acked value (lost
// write) or garbage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/faultinject/tamper.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield {
namespace {

using faultinject::RaceTamperer;
using shieldstore::Options;
using shieldstore::OpLogOptions;
using shieldstore::PartitionedStore;
using shieldstore::SelfHealer;
using shieldstore::SelfHealOptions;
using shieldstore::WriteAheadStore;

sgx::EnclaveConfig TestEnclaveConfig() {
  sgx::EnclaveConfig c;
  c.name = "concurrency-test";
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 256u << 20;
  c.rng_seed = ToBytes("concurrency-test");
  return c;
}

Options SmallOptions() {
  Options o;
  o.num_buckets = 512;
  o.heap_chunk_bytes = 1 << 20;
  o.scrub_budget_buckets = 64;
  return o;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : enclave_(TestEnclaveConfig()) {
    dir_ = ::testing::TempDir() + "/concurrency_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    counter_opts_.backing_file = dir_ + "/counters.bin";
    counter_opts_.increment_cost_cycles = 0;
  }
  ~ConcurrencyTest() override { std::filesystem::remove_all(dir_); }

  sgx::Enclave enclave_;
  std::string dir_;
  sgx::MonotonicCounterService::Options counter_opts_;
};

// Per-key write tracking, owned by a single writer thread (no locking).
struct KeyHistory {
  bool ever_acked = false;
  std::string acked;                // last acknowledged value
  std::set<std::string> attempted;  // values attempted since that ack
};

TEST_F(ConcurrencyTest, SelfHealingStoreSurvivesConcurrentTamper) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kKeysPerWriter = 16;
  constexpr int kRounds = 60;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  SelfHealOptions heal_opts;
  heal_opts.directory = dir_ + "/snapshots";
  SelfHealer healer(wal, sealer, counters, heal_opts);
  ASSERT_TRUE(healer.Start().ok());

  // Background healer (the role the network server's maintenance thread
  // plays in production).
  std::atomic<bool> stop_healer{false};
  std::thread healer_thread([&] {
    while (!stop_healer.load()) {
      healer.Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Background adversary.
  RaceTamperer::Options tamper_opts;
  tamper_opts.seed = 0xdead5eed;
  tamper_opts.interval_ms = 3;
  RaceTamperer tamperer(ps, tamper_opts);
  tamperer.Start();

  // Readers: random probes across every writer's key space. Any outcome is
  // legal except a crash or a torn value; they exist to race the read path
  // against writers, the healer, and the adversary.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(0xbeef + r);
      while (!stop_readers.load()) {
        const std::string key = "w" + std::to_string(rng.NextBelow(kWriters)) + "-k" +
                                std::to_string(rng.NextBelow(kKeysPerWriter));
        (void)wal.Get(key);
      }
    });
  }

  // Writers: each owns a disjoint key range and tracks ack history.
  std::vector<std::vector<KeyHistory>> histories(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    histories[w].resize(kKeysPerWriter);
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string key = "w" + std::to_string(w) + "-k" + std::to_string(k);
          const std::string value =
              "v" + std::to_string(round) + "-" + std::to_string(w * 1000 + k);
          KeyHistory& h = histories[w][k];
          h.attempted.insert(value);
          if (wal.Set(key, value).ok()) {
            h.ever_acked = true;
            h.acked = value;
            h.attempted.clear();
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop_readers.store(true);
  for (auto& t : readers) {
    t.join();
  }

  // Stop the adversary, then drain: keep ticking until every partition is
  // healthy AND a full scrub passes (a final tamper may still be latent).
  tamperer.Stop();
  stop_healer.store(true);
  healer_thread.join();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    if (ps.QuarantinedCount() == 0 && ps.ScrubAll().ok()) {
      break;
    }
    healer.Tick();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "store did not heal: " << healer.last_error().ToString()
        << " (failed recoveries: " << healer.failed_recoveries() << ")";
  }

  EXPECT_GT(tamperer.attacks_launched(), 0u);

  // Zero acknowledged-write loss: every key reads back its last acked value,
  // or one attempted after that ack (in-flight at a quarantine boundary).
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string key = "w" + std::to_string(w) + "-k" + std::to_string(k);
      const KeyHistory& h = histories[w][k];
      Result<std::string> got = wal.Get(key);
      if (!h.ever_acked) {
        continue;  // nothing was promised for this key
      }
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_TRUE(got.value() == h.acked || h.attempted.count(got.value()) > 0)
          << key << " holds '" << got.value() << "', last acked '" << h.acked << "'";
    }
  }
}

TEST_F(ConcurrencyTest, WriteAheadStoreMixedOpsRaceCleanly) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 200;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  // Increment/Append require an existing key.
  ASSERT_TRUE(wal.Set("shared-counter", "0").ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(wal.Set("log-t" + std::to_string(t), "").ok());
  }

  // No adversary here: with every op serialized through the log, shared
  // counters and mixed ops must be exactly consistent.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        if (!wal.Increment("shared-counter", 1).ok()) {
          ++failures;
        }
        const std::string key = "t" + std::to_string(t) + "-i" + std::to_string(i % 8);
        if (!wal.Set(key, std::to_string(i)).ok()) {
          ++failures;
        }
        if (i % 16 == 0 && !wal.Append("log-t" + std::to_string(t), ".").ok()) {
          ++failures;
        }
        (void)wal.Get(key);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  Result<std::string> counter = wal.Get("shared-counter");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(counter.value(), std::to_string(kThreads * kIncrements));
  for (int t = 0; t < kThreads; ++t) {
    Result<std::string> log = wal.Get("log-t" + std::to_string(t));
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value().size(), static_cast<size_t>((kIncrements + 15) / 16));
  }
  EXPECT_TRUE(ps.ScrubAll().ok());
}

}  // namespace
}  // namespace shield
