// Concurrency battery: writer threads, reader threads, a background healer,
// and a background adversary all hammer one self-healing store at once. Run
// under SHIELD_SANITIZE=thread (scripts/check.sh does) — the point of these
// tests is as much "no data race" as "no lost acknowledged write".
//
// Correctness model per key (each key owned by exactly one writer thread):
// after the store drains and heals, the key's value must be its last
// acknowledged value or one attempted after that ack (an in-flight write may
// or may not have landed); it must never be an older acked value (lost
// write) or garbage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/faultinject/tamper.h"
#include "src/obs/snapshot.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield {
namespace {

using faultinject::RaceTamperer;
using shieldstore::Options;
using shieldstore::OpLogOptions;
using shieldstore::PartitionedStore;
using shieldstore::SelfHealer;
using shieldstore::SelfHealOptions;
using shieldstore::WriteAheadStore;

sgx::EnclaveConfig TestEnclaveConfig() {
  sgx::EnclaveConfig c;
  c.name = "concurrency-test";
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 256u << 20;
  c.rng_seed = ToBytes("concurrency-test");
  return c;
}

Options SmallOptions() {
  Options o;
  o.num_buckets = 512;
  o.heap_chunk_bytes = 1 << 20;
  o.scrub_budget_buckets = 64;
  return o;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : enclave_(TestEnclaveConfig()) {
    dir_ = ::testing::TempDir() + "/concurrency_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    counter_opts_.backing_file = dir_ + "/counters.bin";
    counter_opts_.increment_cost_cycles = 0;
  }
  ~ConcurrencyTest() override { std::filesystem::remove_all(dir_); }

  sgx::Enclave enclave_;
  std::string dir_;
  sgx::MonotonicCounterService::Options counter_opts_;
};

// Per-key write tracking, owned by a single writer thread (no locking).
struct KeyHistory {
  bool ever_acked = false;
  std::string acked;                // last acknowledged value
  std::set<std::string> attempted;  // values attempted since that ack
};

TEST_F(ConcurrencyTest, SelfHealingStoreSurvivesConcurrentTamper) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kKeysPerWriter = 16;
  constexpr int kRounds = 60;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  SelfHealOptions heal_opts;
  heal_opts.directory = dir_ + "/snapshots";
  SelfHealer healer(wal, sealer, counters, heal_opts);
  ASSERT_TRUE(healer.Start().ok());

  // Background healer (the role the network server's maintenance thread
  // plays in production).
  std::atomic<bool> stop_healer{false};
  std::thread healer_thread([&] {
    while (!stop_healer.load()) {
      healer.Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Background adversary.
  RaceTamperer::Options tamper_opts;
  tamper_opts.seed = 0xdead5eed;
  tamper_opts.interval_ms = 3;
  RaceTamperer tamperer(ps, tamper_opts);
  tamperer.Start();

  // Readers: random probes across every writer's key space. Any outcome is
  // legal except a crash or a torn value; they exist to race the read path
  // against writers, the healer, and the adversary.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(0xbeef + r);
      while (!stop_readers.load()) {
        const std::string key = "w" + std::to_string(rng.NextBelow(kWriters)) + "-k" +
                                std::to_string(rng.NextBelow(kKeysPerWriter));
        (void)wal.Get(key);
      }
    });
  }

  // Writers: each owns a disjoint key range and tracks ack history.
  std::vector<std::vector<KeyHistory>> histories(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    histories[w].resize(kKeysPerWriter);
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string key = "w" + std::to_string(w) + "-k" + std::to_string(k);
          const std::string value =
              "v" + std::to_string(round) + "-" + std::to_string(w * 1000 + k);
          KeyHistory& h = histories[w][k];
          h.attempted.insert(value);
          if (wal.Set(key, value).ok()) {
            h.ever_acked = true;
            h.acked = value;
            h.attempted.clear();
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop_readers.store(true);
  for (auto& t : readers) {
    t.join();
  }

  // Stop the adversary, then drain: keep ticking until every partition is
  // healthy AND a full scrub passes (a final tamper may still be latent).
  tamperer.Stop();
  stop_healer.store(true);
  healer_thread.join();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    if (ps.QuarantinedCount() == 0 && ps.ScrubAll().ok()) {
      break;
    }
    healer.Tick();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "store did not heal: " << healer.last_error().ToString()
        << " (failed recoveries: " << healer.failed_recoveries() << ")";
  }

  EXPECT_GT(tamperer.attacks_launched(), 0u);

  // Zero acknowledged-write loss: every key reads back its last acked value,
  // or one attempted after that ack (in-flight at a quarantine boundary).
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string key = "w" + std::to_string(w) + "-k" + std::to_string(k);
      const KeyHistory& h = histories[w][k];
      Result<std::string> got = wal.Get(key);
      if (!h.ever_acked) {
        continue;  // nothing was promised for this key
      }
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_TRUE(got.value() == h.acked || h.attempted.count(got.value()) > 0)
          << key << " holds '" << got.value() << "', last acked '" << h.acked << "'";
    }
  }
}

TEST_F(ConcurrencyTest, WriteAheadStoreMixedOpsRaceCleanly) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 200;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  // Increment/Append require an existing key.
  ASSERT_TRUE(wal.Set("shared-counter", "0").ok());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(wal.Set("log-t" + std::to_string(t), "").ok());
  }

  // No adversary here: with every op serialized through the log, shared
  // counters and mixed ops must be exactly consistent.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        if (!wal.Increment("shared-counter", 1).ok()) {
          ++failures;
        }
        const std::string key = "t" + std::to_string(t) + "-i" + std::to_string(i % 8);
        if (!wal.Set(key, std::to_string(i)).ok()) {
          ++failures;
        }
        if (i % 16 == 0 && !wal.Append("log-t" + std::to_string(t), ".").ok()) {
          ++failures;
        }
        (void)wal.Get(key);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  Result<std::string> counter = wal.Get("shared-counter");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(counter.value(), std::to_string(kThreads * kIncrements));
  for (int t = 0; t < kThreads; ++t) {
    Result<std::string> log = wal.Get("log-t" + std::to_string(t));
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value().size(), static_cast<size_t>((kIncrements + 15) / 16));
  }
  EXPECT_TRUE(ps.ScrubAll().ok());
}

TEST_F(ConcurrencyTest, ShardedDurableWindowWritersRaceCleanly) {
  // Group-commit stress: concurrent writers on a per-partition sharded WAL
  // in durable-ack mode. Writers whose keys share a shard race the
  // leader/follower handoff (one fsyncs for the batch, the rest wait on the
  // cv); writers on different shards must never contend. Run under TSan.
  constexpr int kThreads = 4;
  constexpr int kKeysPerWriter = 8;
  constexpr int kRounds = 40;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_window_us = 100;
  log_opts.group_commit_ops = 8;
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_EQ(wal.num_shards(), 4u);

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string key = "dw" + std::to_string(w) + "-k" + std::to_string(k);
          if (!wal.Set(key, "r" + std::to_string(round)).ok()) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0);
  const shieldstore::WalStats stats = wal.Stats();
  EXPECT_EQ(stats.records_logged, static_cast<uint64_t>(kThreads * kKeysPerWriter * kRounds));
  // Group commit amortized: strictly fewer fsyncs than records (batches of
  // up to group_commit_ops shared one fsync).
  EXPECT_LT(stats.fsyncs, stats.records_logged);
  for (int w = 0; w < kThreads; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      Result<std::string> got = wal.Get("dw" + std::to_string(w) + "-k" + std::to_string(k));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), "r" + std::to_string(kRounds - 1));
    }
  }
  EXPECT_TRUE(ps.ScrubAll().ok());
}

TEST_F(ConcurrencyTest, BatchedWritersRaceScrubHealerAndAdversary) {
  // Batched pipeline under fire: writer threads issue multi-op batches
  // (partition-grouped execution, deferred MAC recomputation, one group-
  // commit handle per shard) while a scrubbing healer and a tamperer run.
  // Run under TSan. Model: a batch sub-op acked ok obeys the same zero-
  // acked-loss contract as a singleton write.
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 12;
  constexpr int kRounds = 30;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_window_us = 100;
  log_opts.group_commit_ops = 8;
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  SelfHealOptions heal_opts;
  heal_opts.directory = dir_ + "/snapshots";
  SelfHealer healer(wal, sealer, counters, heal_opts);
  ASSERT_TRUE(healer.Start().ok());

  std::atomic<bool> stop_healer{false};
  std::thread healer_thread([&] {
    while (!stop_healer.load()) {
      healer.Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  RaceTamperer::Options tamper_opts;
  tamper_opts.seed = 0xba7c4ace;
  tamper_opts.interval_ms = 4;
  RaceTamperer tamperer(ps, tamper_opts);
  tamperer.Start();

  std::vector<std::vector<KeyHistory>> histories(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    histories[w].resize(kKeysPerWriter);
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        // One batch per round covering every owned key plus interleaved
        // reads — sub-ops land on all four partitions.
        std::vector<kv::BatchOp> ops;
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string key = "bw" + std::to_string(w) + "-k" + std::to_string(k);
          ops.push_back({kv::BatchOpType::kSet, key,
                         "v" + std::to_string(round) + "-" + std::to_string(w), 0});
          if (k % 3 == 0) {
            ops.push_back({kv::BatchOpType::kGet, key, "", 0});
          }
        }
        const std::vector<kv::BatchOpResult> results = wal.ExecuteBatch(ops);
        for (size_t i = 0; i < ops.size(); ++i) {
          if (ops[i].type != kv::BatchOpType::kSet) {
            continue;
          }
          const int k = std::stoi(ops[i].key.substr(ops[i].key.find("-k") + 2));
          KeyHistory& h = histories[w][k];
          h.attempted.insert(ops[i].value);
          if (results[i].status.ok()) {
            h.ever_acked = true;
            h.acked = ops[i].value;
            h.attempted.clear();
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  tamperer.Stop();
  stop_healer.store(true);
  healer_thread.join();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    if (ps.QuarantinedCount() == 0 && ps.ScrubAll().ok()) {
      break;
    }
    healer.Tick();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "store did not heal: " << healer.last_error().ToString();
  }

  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string key = "bw" + std::to_string(w) + "-k" + std::to_string(k);
      const KeyHistory& h = histories[w][k];
      if (!h.ever_acked) {
        continue;
      }
      Result<std::string> got = wal.Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_TRUE(got.value() == h.acked || h.attempted.count(got.value()) > 0)
          << key << " holds '" << got.value() << "', last acked '" << h.acked << "'";
    }
  }
}

TEST_F(ConcurrencyTest, CompactionRacesWritersHealerAndAdversary) {
  // The compactor (maintenance thread) folds shard logs into snapshots
  // while writers append to those same shards, and an adversary forces
  // recoveries that contend for the same shard locks. Nothing may race,
  // nothing acked may be lost, and compaction must actually run.
  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 12;
  constexpr int kRounds = 50;

  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  PartitionedStore ps(enclave_, SmallOptions(), 4);

  OpLogOptions log_opts;
  log_opts.path = dir_ + "/wal.log";
  log_opts.group_commit_ops = 8;
  WriteAheadStore wal(ps, sealer, counters, log_opts);
  ASSERT_TRUE(wal.Open().ok());

  SelfHealOptions heal_opts;
  heal_opts.directory = dir_ + "/snapshots";
  heal_opts.compact_log_bytes = 2048;  // compact constantly under load
  SelfHealer healer(wal, sealer, counters, heal_opts);
  ASSERT_TRUE(healer.Start().ok());

  std::atomic<bool> stop_healer{false};
  std::thread healer_thread([&] {
    while (!stop_healer.load()) {
      healer.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  RaceTamperer::Options tamper_opts;
  tamper_opts.seed = 0xc0ffee;
  tamper_opts.interval_ms = 5;
  RaceTamperer tamperer(ps, tamper_opts);
  tamperer.Start();

  std::vector<std::vector<KeyHistory>> histories(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    histories[w].resize(kKeysPerWriter);
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const std::string key = "c" + std::to_string(w) + "-k" + std::to_string(k);
          const std::string value = "v" + std::to_string(round) + "-" + std::to_string(w);
          KeyHistory& h = histories[w][k];
          h.attempted.insert(value);
          if (wal.Set(key, std::string(64, 'p') + value).ok()) {
            h.ever_acked = true;
            h.acked = std::string(64, 'p') + value;
            h.attempted.clear();
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  tamperer.Stop();
  stop_healer.store(true);
  healer_thread.join();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    if (ps.QuarantinedCount() == 0 && ps.ScrubAll().ok()) {
      break;
    }
    healer.Tick();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "store did not heal: " << healer.last_error().ToString();
  }

  // Under sanitizer slowdown the adversary can keep every in-load compaction
  // attempt deferred (a quarantined partition refuses to snapshot), so if
  // none succeeded during the race window, force one now that the store is
  // healthy: grow a shard past the threshold and tick until it folds.
  const auto compact_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  int filler = 0;
  while (healer.compactions() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), compact_deadline)
        << "compaction never ran: " << healer.last_error().ToString();
    ASSERT_TRUE(wal.Set("fill-" + std::to_string(filler % 8),
                        std::string(256, 'f') + std::to_string(filler))
                    .ok());
    ++filler;
    healer.Tick();
  }
  EXPECT_GE(healer.compactions(), 1u) << "compaction never ran under load";
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const std::string key = "c" + std::to_string(w) + "-k" + std::to_string(k);
      const KeyHistory& h = histories[w][k];
      if (!h.ever_acked) {
        continue;
      }
      Result<std::string> got = wal.Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_TRUE(got.value() == h.acked ||
                  h.attempted.count(got.value().substr(64)) > 0)
          << key << " holds '" << got.value() << "'";
    }
  }
}

// Metrics recorders race snapshot readers (run under TSan by check.sh):
// sharded relaxed-atomic recording must be data-race-free against concurrent
// Registry::Snapshot folds, and exact once the recorders join.
TEST_F(ConcurrencyTest, MetricsRecordersRaceSnapshots) {
  obs::Registry registry;
  obs::Counter& ops = registry.GetCounter("race.ops");
  obs::Gauge& level = registry.GetGauge("race.level");
  obs::Histogram& lat = registry.GetHistogram("race.latency");
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 10'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ops.Inc();
        level.Add(1);
        lat.Record(static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i));
        obs::ScopedStage stage(&registry, obs::Stage::kDecode);
        level.Add(-1);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.Snapshot();
      const obs::HistogramData* h = snap.Histogram("race.latency");
      ASSERT_NE(h, nullptr);
      uint64_t total = 0;
      for (const auto& [index, n] : h->buckets) {
        total += n;
      }
      EXPECT_EQ(total, h->count);
      // Wire-encode mid-race too: the codec must only ever see valid folds.
      EXPECT_TRUE(obs::DecodeStatsSnapshot(obs::EncodeStatsSnapshot(snap)).ok());
    }
  });
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ops.Value(), uint64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(level.Value(), 0);
  EXPECT_EQ(lat.Data().count, uint64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(registry.StageHistogram(obs::Stage::kDecode).Data().count,
            uint64_t{kWriters} * kOpsPerWriter);
}

}  // namespace
}  // namespace shield
