// Entry codec tests (Figure 5 layout): sealing, searching, integrity.
#include <gtest/gtest.h>

#include "src/crypto/drbg.h"
#include "src/kv/entry.h"

namespace shield::kv {
namespace {

StoreKeys TestKeys() {
  return StoreKeys::Derive(AsBytes("kv-entry-test-master"));
}

Bytes Storage(size_t key_size, size_t val_size) {
  return Bytes(EntryHeader::BytesNeeded(key_size, val_size));
}

TEST(EntryTest, SealOpenRoundTrip) {
  const StoreKeys keys = TestKeys();
  Bytes storage = Storage(5, 11);
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  crypto::Drbg drbg(AsBytes("iv"));
  uint8_t iv[16];
  drbg.Fill(MutableByteSpan(iv, 16));
  SealNewEntry(keys, "mykey", "lorem ipsum", 0, ByteSpan(iv, 16), header);
  EXPECT_TRUE(EntryKeyEquals(keys, *header, "mykey"));
  EXPECT_FALSE(EntryKeyEquals(keys, *header, "mykex"));
  EXPECT_FALSE(EntryKeyEquals(keys, *header, "mykey2"));
  Result<std::string> value = OpenEntryValue(keys, *header);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "lorem ipsum");
  EXPECT_EQ(OpenEntryKey(keys, *header), "mykey");
}

TEST(EntryTest, CiphertextDoesNotLeakPlaintext) {
  const StoreKeys keys = TestKeys();
  Bytes storage = Storage(6, 6);
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  uint8_t iv[16] = {1};
  SealNewEntry(keys, "secret", "hidden", 0, ByteSpan(iv, 16), header);
  const std::string_view ct(reinterpret_cast<const char*>(header->Ciphertext()), 12);
  EXPECT_EQ(ct.find("secret"), std::string_view::npos);
  EXPECT_EQ(ct.find("hidden"), std::string_view::npos);
}

TEST(EntryTest, ResealAdvancesIvAndChangesCiphertext) {
  const StoreKeys keys = TestKeys();
  Bytes storage = Storage(3, 5);
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  uint8_t iv[16] = {};
  SealNewEntry(keys, "abc", "12345", 0, ByteSpan(iv, 16), header);
  Bytes iv1(header->iv_ctr, header->iv_ctr + 16);
  Bytes ct1(header->Ciphertext(), header->Ciphertext() + 8);
  ResealEntry(keys, "abc", "12345", 0, header);
  Bytes iv2(header->iv_ctr, header->iv_ctr + 16);
  Bytes ct2(header->Ciphertext(), header->Ciphertext() + 8);
  EXPECT_NE(iv1, iv2);
  EXPECT_NE(ct1, ct2);
  EXPECT_EQ(OpenEntryValue(keys, *header).value(), "12345");
}

TEST(EntryTest, MacCoversEveryAuthenticatedField) {
  const StoreKeys keys = TestKeys();
  Bytes storage = Storage(4, 8);
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  uint8_t iv[16] = {7};
  SealNewEntry(keys, "key1", "value123", 0, ByteSpan(iv, 16), header);
  auto expect_fail = [&](auto&& mutate) {
    Bytes copy = storage;
    auto* h = reinterpret_cast<EntryHeader*>(copy.data());
    mutate(h);
    EXPECT_FALSE(OpenEntryValue(keys, *h).ok());
  };
  expect_fail([](EntryHeader* h) { h->Ciphertext()[0] ^= 1; });
  expect_fail([](EntryHeader* h) { h->Ciphertext()[11] ^= 0x80; });
  expect_fail([](EntryHeader* h) { h->key_hint ^= 1; });
  expect_fail([](EntryHeader* h) { h->flags ^= 1; });
  expect_fail([](EntryHeader* h) { h->iv_ctr[15] ^= 1; });
  expect_fail([](EntryHeader* h) { h->mac[0] ^= 1; });
}

TEST(EntryTest, SizeTamperCannotSmuggleData) {
  const StoreKeys keys = TestKeys();
  Bytes storage = Storage(4, 8);
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  uint8_t iv[16] = {9};
  SealNewEntry(keys, "key1", "value123", 0, ByteSpan(iv, 16), header);
  header->val_size = 4;  // attacker shrinks the value
  EXPECT_FALSE(OpenEntryValue(keys, *header).ok());
}

TEST(EntryTest, HintAndBucketHashAreKeyed) {
  const StoreKeys a = StoreKeys::Derive(AsBytes("master-a"));
  const StoreKeys b = StoreKeys::Derive(AsBytes("master-b"));
  // Different stores hash the same key differently (no cross-store
  // correlation of chain positions, §4.2).
  int differing_hints = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (KeyHint(a, key) != KeyHint(b, key)) {
      ++differing_hints;
    }
    EXPECT_NE(BucketHash(a, key), BucketHash(b, key)) << key;
  }
  EXPECT_GT(differing_hints, 32);
}

TEST(EntryTest, DeriveIsDeterministicAndSeparated) {
  const StoreKeys k1 = StoreKeys::Derive(AsBytes("same"));
  const StoreKeys k2 = StoreKeys::Derive(AsBytes("same"));
  EXPECT_EQ(k1.enc_key, k2.enc_key);
  EXPECT_NE(ByteSpan(k1.enc_key.data(), 16).data()[0], 0xFF);  // smoke
  // The four keys are pairwise distinct.
  EXPECT_NE(k1.enc_key, k1.mac_key);
  EXPECT_NE(ByteSpan(k1.index_key.data(), 16).front(), ByteSpan(k1.hint_key.data(), 16).front());
}

TEST(EntryTest, LargeValuesRoundTrip) {
  const StoreKeys keys = TestKeys();
  const std::string big(100'000, 'z');
  Bytes storage = Storage(3, big.size());
  auto* header = reinterpret_cast<EntryHeader*>(storage.data());
  uint8_t iv[16] = {3};
  SealNewEntry(keys, "big", big, 0, ByteSpan(iv, 16), header);
  EXPECT_EQ(OpenEntryValue(keys, *header).value(), big);
}

}  // namespace
}  // namespace shield::kv
