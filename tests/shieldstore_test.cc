// ShieldStore engine tests: operations, the §5 optimizations, integrity
// (tamper, replay, unlink, hint attacks), snapshot persistence + rollback
// protection, snapshot epochs, and the partitioned store.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/persist.h"
#include "src/shieldstore/store.h"

namespace shield::shieldstore {

// Friend peer for white-box tampering with untrusted memory.
class StoreTestPeer {
 public:
  static kv::StoreKeys& Keys(Store& s) { return *s.keys_; }

  static size_t BucketIndexFor(Store& s, std::string_view key) {
    return s.BucketIndex(kv::BucketHash(*s.keys_, key));
  }

  // Chains link by ref (offset or as-if pointer), not raw pointer; the peer
  // exposes both the head ref slot and the translation helpers so attacks
  // can forge either form.
  static uint64_t& BucketHead(Store& s, size_t bucket) {
    return s.buckets_[bucket].head_ref;
  }

  static kv::EntryHeader* Deref(Store& s, uint64_t ref) { return s.Deref(ref); }
  static uint64_t Ref(Store& s, kv::EntryHeader* e) { return s.Ref(e); }

  static kv::EntryHeader* RawEntry(Store& s, std::string_view key) {
    const size_t bucket = BucketIndexFor(s, key);
    for (uint64_t ref = s.buckets_[bucket].head_ref; ref != 0;) {
      kv::EntryHeader* e = s.Deref(ref);
      if (kv::EntryKeyEquals(*s.keys_, *e, key)) {
        return e;
      }
      ref = e->next_ref;
    }
    return nullptr;
  }

  static uint8_t* MacBucketSlot(Store& s, size_t bucket, size_t position) {
    Store::MacBucket* node = s.buckets_[bucket].macs;
    size_t hop = position / Store::MacBucket::kCapacity;
    while (hop-- > 0) {
      node = node->next;
    }
    return node->macs[position % Store::MacBucket::kCapacity];
  }

  static size_t MacBucketChainLength(Store& s, size_t bucket) {
    size_t n = 0;
    for (Store::MacBucket* node = s.buckets_[bucket].macs; node != nullptr; node = node->next) {
      ++n;
    }
    return n;
  }
};

namespace {

sgx::EnclaveConfig TestEnclaveConfig() {
  sgx::EnclaveConfig c;
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 256u << 20;
  c.rng_seed = ToBytes("shieldstore-test");
  return c;
}

Options SmallOptions() {
  Options o;
  o.num_buckets = 256;
  o.heap_chunk_bytes = 1 << 20;
  return o;
}

class ShieldStoreTest : public ::testing::Test {
 protected:
  ShieldStoreTest() : enclave_(TestEnclaveConfig()) {}
  sgx::Enclave enclave_;
};

TEST_F(ShieldStoreTest, SetGetDelete) {
  Store store(enclave_, SmallOptions());
  EXPECT_TRUE(store.Set("alpha", "1").ok());
  EXPECT_TRUE(store.Set("beta", "2").ok());
  EXPECT_EQ(store.Get("alpha").value(), "1");
  EXPECT_EQ(store.Get("beta").value(), "2");
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_TRUE(store.Delete("alpha").ok());
  EXPECT_EQ(store.Get("alpha").status().code(), Code::kNotFound);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_EQ(store.Delete("alpha").code(), Code::kNotFound);
}

TEST_F(ShieldStoreTest, OverwriteInPlaceAndGrow) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("key", "short").ok());
  ASSERT_TRUE(store.Set("key", "tiny").ok());  // shrink: in place
  EXPECT_EQ(store.Get("key").value(), "tiny");
  const std::string big(5000, 'x');  // forces the grow path
  ASSERT_TRUE(store.Set("key", big).ok());
  EXPECT_EQ(store.Get("key").value(), big);
  EXPECT_EQ(store.Size(), 1u);
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

TEST_F(ShieldStoreTest, EmptyValuesAndBinaryData) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("empty", "").ok());
  EXPECT_EQ(store.Get("empty").value(), "");
  std::string binary("\x00\x01\xff\xfe\x00", 5);
  ASSERT_TRUE(store.Set(binary, binary).ok());
  EXPECT_EQ(store.Get(binary).value(), binary);
}

TEST_F(ShieldStoreTest, ManyKeysAllRecoverable) {
  Store store(enclave_, SmallOptions());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Set("key-" + std::to_string(i), "value-" + std::to_string(i * i)).ok());
  }
  EXPECT_EQ(store.Size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(store.Get("key-" + std::to_string(i)).value(), "value-" + std::to_string(i * i));
  }
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

TEST_F(ShieldStoreTest, AppendAndIncrement) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("log", "a").ok());
  ASSERT_TRUE(store.Append("log", "b").ok());
  ASSERT_TRUE(store.Append("log", "c").ok());
  EXPECT_EQ(store.Get("log").value(), "abc");
  EXPECT_EQ(store.Append("missing", "x").code(), Code::kNotFound);

  ASSERT_TRUE(store.Set("counter", "10").ok());
  EXPECT_EQ(store.Increment("counter", 5).value(), 15);
  EXPECT_EQ(store.Increment("counter", -20).value(), -5);
  EXPECT_EQ(store.Get("counter").value(), "-5");
  ASSERT_TRUE(store.Set("text", "abc").ok());
  EXPECT_EQ(store.Increment("text", 1).status().code(), Code::kInvalidArgument);
}

TEST_F(ShieldStoreTest, ChainsAndMacBucketChaining) {
  Options options = SmallOptions();
  options.num_buckets = 1;  // everything collides
  Store store(enclave_, options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Set("k" + std::to_string(i), std::to_string(i)).ok());
  }
  // 100 entries at 30 MACs per bucket node => 4 chained nodes.
  EXPECT_EQ(StoreTestPeer::MacBucketChainLength(store, 0), 4u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(store.Get("k" + std::to_string(i)).value(), std::to_string(i));
  }
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(store.Delete("k" + std::to_string(i)).ok());
  }
  EXPECT_EQ(StoreTestPeer::MacBucketChainLength(store, 0), 2u);
  for (int i = 1; i < 100; i += 2) {
    ASSERT_EQ(store.Get("k" + std::to_string(i)).value(), std::to_string(i));
  }
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

// ------------------------------------------------------------- option grid

struct OptionCase {
  bool key_hint;
  bool mac_bucketing;
  bool extra_heap;
  size_t mac_hashes;
};

class ShieldStoreOptionsTest : public ::testing::TestWithParam<OptionCase> {
 protected:
  ShieldStoreOptionsTest() : enclave_(TestEnclaveConfig()) {}
  sgx::Enclave enclave_;
};

TEST_P(ShieldStoreOptionsTest, FullWorkloadCorrectUnderAnyConfig) {
  const OptionCase& param = GetParam();
  Options options = SmallOptions();
  options.key_hint = param.key_hint;
  options.mac_bucketing = param.mac_bucketing;
  options.extra_heap = param.extra_heap;
  options.num_mac_hashes = param.mac_hashes;
  Store store(enclave_, options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), std::string(1 + i % 64, 'v')).ok());
  }
  for (int i = 0; i < 500; i += 3) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), "updated").ok());
  }
  for (int i = 0; i < 500; i += 7) {
    ASSERT_TRUE(store.Delete("key" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto result = store.Get("key" + std::to_string(i));
    if (i % 7 == 0) {
      EXPECT_EQ(result.status().code(), Code::kNotFound) << i;
    } else if (i % 3 == 0) {
      EXPECT_EQ(result.value(), "updated") << i;
    } else {
      EXPECT_EQ(result.value(), std::string(1 + i % 64, 'v')) << i;
    }
  }
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(
    OptionGrid, ShieldStoreOptionsTest,
    ::testing::Values(OptionCase{false, false, false, 0}, OptionCase{true, false, false, 0},
                      OptionCase{true, true, false, 0}, OptionCase{true, true, true, 0},
                      OptionCase{false, true, true, 0}, OptionCase{true, true, true, 16},
                      OptionCase{true, false, true, 7}, OptionCase{false, false, true, 1}),
    [](const auto& info) {
      const OptionCase& c = info.param;
      return std::string("hint") + (c.key_hint ? "1" : "0") + "mb" +
             (c.mac_bucketing ? "1" : "0") + "heap" + (c.extra_heap ? "1" : "0") + "sets" +
             std::to_string(c.mac_hashes);
    });

// ---------------------------------------------------------------- security

TEST_F(ShieldStoreTest, DetectsCiphertextTamper) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("victim", "sensitive-data").ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "victim");
  ASSERT_NE(entry, nullptr);
  entry->Ciphertext()[entry->key_size] ^= 0x01;  // flip one value byte
  EXPECT_EQ(store.Get("victim").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, DetectsMacTamper) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("victim", "data").ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "victim");
  entry->mac[3] ^= 0x80;
  // The forged MAC breaks the bucket-set hash immediately.
  EXPECT_EQ(store.Get("victim").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, DetectsEntryUnlinking) {
  Options options = SmallOptions();
  options.num_buckets = 1;
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("first", "1").ok());
  ASSERT_TRUE(store.Set("second", "2").ok());
  // Unlink the chain head ("second", inserted last) behind the store's back.
  uint64_t& head = StoreTestPeer::BucketHead(store, 0);
  head = StoreTestPeer::Deref(store, head)->next_ref;
  // Both the lookup of the removed key and of the surviving key must flag
  // tampering rather than report a clean miss/hit.
  EXPECT_EQ(store.Get("second").status().code(), Code::kIntegrityFailure);
  EXPECT_EQ(store.Get("first").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, DetectsReplayOfOldVersion) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("account", "balance=100").ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "account");
  // Snapshot the full old entry bytes (header + ciphertext).
  const size_t total = sizeof(kv::EntryHeader) + entry->CiphertextSize();
  Bytes old_bytes(reinterpret_cast<uint8_t*>(entry), reinterpret_cast<uint8_t*>(entry) + total);
  // Same-length update re-seals in place.
  ASSERT_TRUE(store.Set("account", "balance=000").ok());
  ASSERT_EQ(StoreTestPeer::RawEntry(store, "account"), entry);
  const uint64_t next = entry->next_ref;
  std::memcpy(entry, old_bytes.data(), total);  // replay the old version
  entry->next_ref = next;
  // The old entry carries a valid *entry* MAC, but the bucket-set MAC hash
  // in the enclave reflects the newer version: replay is detected.
  EXPECT_EQ(store.Get("account").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, HintTamperNeverBecomesSilentMiss) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("victim", "data").ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "victim");
  entry->key_hint ^= 0xFF;
  // Step-one search skips the entry (hint mismatch), the two-step fallback
  // finds it by decryption, and the authenticated hint field then exposes
  // the tampering. The crucial property: NOT a clean kNotFound.
  EXPECT_EQ(store.Get("victim").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, DetectsMacBucketTamper) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("victim", "data").ok());
  const size_t bucket = StoreTestPeer::BucketIndexFor(store, "victim");
  StoreTestPeer::MacBucketSlot(store, bucket, 0)[0] ^= 0x01;
  EXPECT_EQ(store.Get("victim").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, DetectsForgedEntryInEmptyBucket) {
  Options options = SmallOptions();
  options.num_buckets = 2;
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("legit", "1").ok());
  const size_t legit_bucket = StoreTestPeer::BucketIndexFor(store, "legit");
  const size_t other_bucket = 1 - legit_bucket;
  // Splice the (validly MAC'd) entry into a bucket the enclave never wrote.
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "legit");
  StoreTestPeer::BucketHead(store, other_bucket) = StoreTestPeer::Ref(store, entry);
  StoreTestPeer::BucketHead(store, legit_bucket) = 0;
  EXPECT_EQ(store.Get("legit").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, RejectsChainPointerIntoEnclave) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("victim", "data").ok());
  const size_t bucket = StoreTestPeer::BucketIndexFor(store, "victim");
  // §7 attack: redirect the chain head into enclave memory to trick the
  // store into reading/writing trusted state.
  // The ref forged as-if it were a raw pointer: in pointer mode this is a
  // pointer into trusted memory, in offset mode a ref far past the carved
  // zone — either way outside the untrusted window the store accepts.
  void* inside = enclave_.Allocate(64);
  StoreTestPeer::BucketHead(store, bucket) = reinterpret_cast<uint64_t>(inside);
  EXPECT_EQ(store.Get("victim").status().code(), Code::kIntegrityFailure);
  enclave_.Free(inside);
}

TEST_F(ShieldStoreTest, ChainCycleDoesNotHang) {
  Options options = SmallOptions();
  options.num_buckets = 1;
  options.integrity = true;
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("a", "1").ok());
  ASSERT_TRUE(store.Set("b", "2").ok());
  const uint64_t head_ref = StoreTestPeer::BucketHead(store, 0);
  kv::EntryHeader* head = StoreTestPeer::Deref(store, head_ref);
  StoreTestPeer::Deref(store, head->next_ref)->next_ref = head_ref;  // cycle
  EXPECT_EQ(store.Get("nonexistent").status().code(), Code::kIntegrityFailure);
}

TEST_F(ShieldStoreTest, CiphertextHidesPlaintext) {
  Store store(enclave_, SmallOptions());
  const std::string secret = "super-secret-payload-7463";
  ASSERT_TRUE(store.Set("key-material", secret).ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "key-material");
  const std::string_view ct(reinterpret_cast<const char*>(entry->Ciphertext()),
                            entry->CiphertextSize());
  EXPECT_EQ(ct.find(secret), std::string_view::npos);
  EXPECT_EQ(ct.find("key-material"), std::string_view::npos);
}

TEST_F(ShieldStoreTest, UpdateChangesCiphertextEvenForSameValue) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("k", "same-value").ok());
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "k");
  Bytes first(entry->Ciphertext(), entry->Ciphertext() + entry->CiphertextSize());
  ASSERT_TRUE(store.Set("k", "same-value").ok());
  Bytes second(entry->Ciphertext(), entry->Ciphertext() + entry->CiphertextSize());
  EXPECT_NE(first, second) << "IV/counter must advance on every reseal";
  EXPECT_EQ(store.Get("k").value(), "same-value");
}

// ------------------------------------------------------------- persistence

class PersistTest : public ShieldStoreTest {
 protected:
  PersistTest() {
    dir_ = ::testing::TempDir() + "/shieldstore_persist_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    counter_opts_.backing_file = dir_ + "/counters.bin";
    counter_opts_.increment_cost_cycles = 0;
  }
  ~PersistTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  sgx::MonotonicCounterService::Options counter_opts_;
};

TEST_F(PersistTest, SnapshotAndRecover) {
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  {
    Store store(enclave_, options);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(store.Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    Snapshotter snap(store, sealer, counters, {dir_, /*optimized=*/false});
    ASSERT_TRUE(snap.SnapshotNow().ok());
  }
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, options, sealer, counters, {dir_, false});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Store& store = **recovered;
  EXPECT_EQ(store.Size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(store.Get("k" + std::to_string(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST_F(PersistTest, OptimizedSnapshotServesDuringWrite) {
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Set("k" + std::to_string(i), "old").ok());
  }
  Snapshotter snap(store, sealer, counters, {dir_, /*optimized=*/true});
  ASSERT_TRUE(snap.StartSnapshot().ok());
  EXPECT_TRUE(store.InSnapshotEpoch());
  // Serve during the snapshot: updates land in the temp table, reads see
  // both layers, deletes tombstone.
  ASSERT_TRUE(store.Set("k0", "new").ok());
  ASSERT_TRUE(store.Set("fresh", "42").ok());
  ASSERT_TRUE(store.Delete("k1").ok());
  EXPECT_EQ(store.Get("k0").value(), "new");
  EXPECT_EQ(store.Get("fresh").value(), "42");
  EXPECT_EQ(store.Get("k1").status().code(), Code::kNotFound);
  EXPECT_EQ(store.Get("k2").value(), "old");
  ASSERT_TRUE(snap.FinishSnapshot(/*wait=*/true).ok());
  EXPECT_FALSE(store.InSnapshotEpoch());
  // Epoch merged into the main table.
  EXPECT_EQ(store.Get("k0").value(), "new");
  EXPECT_EQ(store.Get("fresh").value(), "42");
  EXPECT_EQ(store.Get("k1").status().code(), Code::kNotFound);
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
  // The snapshot on disk reflects the pre-epoch state.
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, options, sealer, counters, {dir_, true});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Get("k0").value(), "old");
  EXPECT_EQ((*recovered)->Get("k1").value(), "old");
  EXPECT_EQ((*recovered)->Get("fresh").status().code(), Code::kNotFound);
}

TEST_F(PersistTest, RollbackAttackDetected) {
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("balance", "100").ok());
  Snapshotter snap(store, sealer, counters, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  // Attacker stashes the old snapshot files.
  const std::string stash = dir_ + "/stash";
  std::filesystem::create_directories(stash);
  std::filesystem::copy(snap.MetaPath(), stash + "/shieldstore.meta");
  std::filesystem::copy(snap.DataPath(), stash + "/shieldstore.data");
  // Legitimate newer snapshot.
  ASSERT_TRUE(store.Set("balance", "0").ok());
  ASSERT_TRUE(snap.SnapshotNow().ok());
  // Replay the stale snapshot.
  std::filesystem::copy(stash + "/shieldstore.meta", snap.MetaPath(),
                        std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy(stash + "/shieldstore.data", snap.DataPath(),
                        std::filesystem::copy_options::overwrite_existing);
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, options, sealer, counters, {dir_, false});
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kRollbackDetected);
}

TEST_F(PersistTest, TamperedDataFileDetected) {
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Set("k" + std::to_string(i), "v").ok());
  }
  Snapshotter snap(store, sealer, counters, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  // Flip one ciphertext byte in the middle of the data file, leaving the
  // trailing footer intact: an attacker-edited file, not a torn write.
  FILE* f = std::fopen(snap.DataPath().c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long mid = std::ftell(f) / 2;
  std::fseek(f, mid, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, mid, SEEK_SET);
  std::fputc(c ^ 1, f);
  std::fclose(f);
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, options, sealer, counters, {dir_, false});
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kIntegrityFailure);
}

TEST_F(PersistTest, SnapshotFromDifferentEnclaveRejected) {
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("k", "v").ok());
  Snapshotter snap(store, sealer, counters, {dir_, false});
  ASSERT_TRUE(snap.SnapshotNow().ok());
  // An enclave with a different measurement derives different seal keys.
  sgx::EnclaveConfig other_cfg = TestEnclaveConfig();
  other_cfg.name = "other";
  sgx::Enclave other(other_cfg);
  sgx::SealingService other_sealer(AsBytes("fuse"), other.measurement());
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(other, options, other_sealer, counters, {dir_, false});
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kIntegrityFailure);
}


TEST_F(PersistTest, RollbackDetectedAcrossSnapshotterInstances) {
  // Regression test: a fresh Snapshotter must adopt the monotonic counter
  // bound to the existing snapshot; creating a new counter per instance
  // would let stale snapshots replay cleanly.
  const Options options = SmallOptions();
  sgx::SealingService sealer(AsBytes("fuse"), enclave_.measurement());
  sgx::MonotonicCounterService counters(counter_opts_);
  Store store(enclave_, options);
  ASSERT_TRUE(store.Set("balance", "100").ok());
  {
    Snapshotter snap(store, sealer, counters, {dir_, false});
    ASSERT_TRUE(snap.SnapshotNow().ok());
  }
  const std::string stash = dir_ + "/stash";
  std::filesystem::create_directories(stash);
  std::filesystem::copy(dir_ + "/shieldstore.meta", stash + "/shieldstore.meta");
  std::filesystem::copy(dir_ + "/shieldstore.data", stash + "/shieldstore.data");
  ASSERT_TRUE(store.Set("balance", "0").ok());
  {
    // A *different* snapshotter instance (e.g. after a process restart).
    Snapshotter snap(store, sealer, counters, {dir_, false});
    ASSERT_TRUE(snap.SnapshotNow().ok());
  }
  std::filesystem::copy(stash + "/shieldstore.meta", dir_ + "/shieldstore.meta",
                        std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy(stash + "/shieldstore.data", dir_ + "/shieldstore.data",
                        std::filesystem::copy_options::overwrite_existing);
  Result<std::unique_ptr<Store>> recovered =
      Snapshotter::Recover(enclave_, options, sealer, counters, {dir_, false});
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Code::kRollbackDetected);
}

// -------------------------------------------------------------- key hints

TEST_F(ShieldStoreTest, KeyHintReducesDecryptions) {
  Options with_hint = SmallOptions();
  with_hint.num_buckets = 4;  // long chains
  Options no_hint = with_hint;
  no_hint.key_hint = false;

  uint64_t decrypts_with, decrypts_without;
  {
    Store store(enclave_, with_hint);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(store.Set("key" + std::to_string(i), "v").ok());
    }
    const uint64_t before = store.stats().decryptions;
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(store.Get("key" + std::to_string(i)).ok());
    }
    decrypts_with = store.stats().decryptions - before;
  }
  {
    Store store(enclave_, no_hint);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(store.Set("key" + std::to_string(i), "v").ok());
    }
    const uint64_t before = store.stats().decryptions;
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(store.Get("key" + std::to_string(i)).ok());
    }
    decrypts_without = store.stats().decryptions - before;
  }
  // ~100-entry chains: hints should cut key decryptions by well over 10x
  // (Figure 9's effect).
  EXPECT_LT(decrypts_with * 10, decrypts_without);
}

// ------------------------------------------------------------------ cache

TEST_F(ShieldStoreTest, EpcCacheServesHotReads) {
  Options options = SmallOptions();
  options.epc_cache = true;
  options.cache_slots = 1024;
  Store store(enclave_, options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(store.Get("k" + std::to_string(i)).value(), "v" + std::to_string(i));
    }
  }
  EXPECT_GT(store.stats().cache_hits, 300u);
  // Writes invalidate/refresh: no stale reads.
  ASSERT_TRUE(store.Set("k5", "fresh").ok());
  EXPECT_EQ(store.Get("k5").value(), "fresh");
  ASSERT_TRUE(store.Delete("k7").ok());
  EXPECT_EQ(store.Get("k7").status().code(), Code::kNotFound);
}

// ------------------------------------------------------------- partitioned

TEST_F(ShieldStoreTest, PartitionedBasicOps) {
  PartitionedStore store(enclave_, SmallOptions(), 4);
  EXPECT_EQ(store.num_partitions(), 4u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), std::to_string(i)).ok());
  }
  EXPECT_EQ(store.Size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(store.Get("key" + std::to_string(i)).value(), std::to_string(i));
  }
  // Partition routing is stable and partitions the space.
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) {
    const size_t p = store.PartitionOf("key" + std::to_string(i));
    EXPECT_EQ(p, store.PartitionOf("key" + std::to_string(i)));
    EXPECT_LT(p, 4u);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 4u) << "100 keys should hit all 4 partitions";
}

TEST_F(ShieldStoreTest, PartitionedConcurrentMixedOps) {
  PartitionedStore store(enclave_, SmallOptions(), 4);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &failures, t] {
      for (int i = 0; i < 400; ++i) {
        const std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        if (!store.Set(key, std::to_string(i)).ok()) {
          ++failures;
        }
        auto got = store.Get(key);
        if (!got.ok() || got.value() != std::to_string(i)) {
          ++failures;
        }
        if (i % 5 == 0 && !store.Delete(key).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.Size(), 4u * (400 - 80));
}


TEST_F(ShieldStoreTest, RepartitionPreservesDataAndRouting) {
  PartitionedStore store(enclave_, SmallOptions(), 2);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), std::to_string(i * 3)).ok());
  }
  ASSERT_TRUE(store.Delete("key5").ok());
  // Scale up: every entry is decrypted, verified, and re-sealed under the
  // new partitions' keys.
  ASSERT_TRUE(store.Repartition(4).ok());
  EXPECT_EQ(store.num_partitions(), 4u);
  EXPECT_EQ(store.Size(), 599u);
  for (int i = 0; i < 600; ++i) {
    auto got = store.Get("key" + std::to_string(i));
    if (i == 5) {
      EXPECT_EQ(got.status().code(), Code::kNotFound);
    } else {
      ASSERT_EQ(got.value(), std::to_string(i * 3)) << i;
    }
  }
  // Scale down below the original count too.
  ASSERT_TRUE(store.Repartition(1).ok());
  EXPECT_EQ(store.num_partitions(), 1u);
  EXPECT_EQ(store.Size(), 599u);
  EXPECT_EQ(store.Get("key599").value(), std::to_string(599 * 3));
  ASSERT_TRUE(store.partition(0).VerifyFullIntegrity().ok());
}

TEST_F(ShieldStoreTest, RepartitionUnderConcurrentTraffic) {
  PartitionedStore store(enclave_, SmallOptions(), 2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Set("stable" + std::to_string(i), "v").ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "hot" + std::to_string(i++ % 50);
      if (!store.Set(key, "x").ok()) {
        ++failures;
      }
      if (!store.Get("stable7").ok()) {
        ++failures;
      }
    }
  });
  for (size_t p : {4u, 3u, 1u, 2u}) {
    ASSERT_TRUE(store.Repartition(p).ok());
  }
  stop.store(true);
  traffic.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.Get("stable7").value(), "v");
}

TEST_F(ShieldStoreTest, ForEachDecryptedVisitsLiveEntriesOnly) {
  Store store(enclave_, SmallOptions());
  ASSERT_TRUE(store.Set("a", "1").ok());
  ASSERT_TRUE(store.Set("b", "2").ok());
  ASSERT_TRUE(store.Set("c", "3").ok());
  ASSERT_TRUE(store.Delete("b").ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(store
                  .ForEachDecrypted([&](std::string_view k, std::string_view v) {
                    seen.emplace(k, v);
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["a"], "1");
  EXPECT_EQ(seen["c"], "3");
  // Tampering surfaces through the iteration too.
  kv::EntryHeader* entry = StoreTestPeer::RawEntry(store, "a");
  entry->Ciphertext()[entry->key_size] ^= 1;
  EXPECT_EQ(store.ForEachDecrypted([](std::string_view, std::string_view) {
    return Status::Ok();
  }).code(), Code::kIntegrityFailure);
}

// ------------------------------------------------- ShieldBase OCALL costs

TEST_F(ShieldStoreTest, ExtraHeapSlashesOcalls) {
  Options base = SmallOptions();
  base.extra_heap = false;
  Options opt = SmallOptions();
  opt.extra_heap = true;
  opt.heap_chunk_bytes = 16u << 20;

  const uint64_t before_base = enclave_.boundary().ocall_count();
  {
    Store store(enclave_, base);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(store.Set("k" + std::to_string(i), "value").ok());
    }
    const uint64_t base_ocalls = enclave_.boundary().ocall_count() - before_base;
    EXPECT_GE(base_ocalls, 1000u) << "one OCALL per allocation without the extra heap";
  }
  const uint64_t before_opt = enclave_.boundary().ocall_count();
  {
    Store store(enclave_, opt);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(store.Set("k" + std::to_string(i), "value").ok());
    }
    const uint64_t opt_ocalls = enclave_.boundary().ocall_count() - before_opt;
    EXPECT_LE(opt_ocalls, 10u) << "chunked extra heap amortizes OCALLs (§5.1)";
  }
}

// ------------------------------------------- crypto backend equivalence
//
// The AES-NI hot path must be indistinguishable from the table reference at
// the store level: same deterministic enclave seed + master key + workload
// must yield byte-identical sealed entries (IV, MAC, ciphertext) and
// identical exported secure metadata. Skips where the hardware backend is
// not active (no AES-NI, SHIELD_FORCE_SOFT_AES, -DSHIELD_DISABLE_AESNI).

TEST(BackendEquivalenceTest, HardwareAndTableStoresAreByteIdentical) {
  if (crypto::Aes128::Backend() != crypto::AesBackend::kAesNi) {
    GTEST_SKIP() << "hardware crypto backend not active";
  }
  sgx::Enclave hw_enclave(TestEnclaveConfig());
  sgx::Enclave sw_enclave(TestEnclaveConfig());
  Options opts = SmallOptions();
  opts.master_key = ToBytes("cross-backend-master");
  Options soft_opts = opts;
  soft_opts.soft_crypto = true;
  Store hw(hw_enclave, opts);
  Store sw(sw_enclave, soft_opts);

  // Identical mixed workload on both stores: inserts, overwrites (shrink and
  // grow), deletes, reads, and a batch with every op type.
  auto apply = [](Store& s) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(s.Set("key-" + std::to_string(i), "value-" + std::to_string(i * 7)).ok());
    }
    for (int i = 0; i < 200; i += 3) {
      ASSERT_TRUE(s.Set("key-" + std::to_string(i), "v").ok());  // shrink in place
    }
    for (int i = 1; i < 200; i += 5) {
      ASSERT_TRUE(s.Set("key-" + std::to_string(i), std::string(300, 'g')).ok());  // grow
    }
    for (int i = 2; i < 200; i += 7) {
      ASSERT_TRUE(s.Delete("key-" + std::to_string(i)).ok());
    }
    for (int i = 0; i < 200; i += 2) {
      (void)s.Get("key-" + std::to_string(i));
    }
    std::vector<kv::BatchOp> batch;
    batch.push_back({kv::BatchOpType::kSet, "batch-a", "1", 0});
    batch.push_back({kv::BatchOpType::kIncrement, "batch-a", "", 41});
    batch.push_back({kv::BatchOpType::kAppend, "batch-a", "-tail", 0});
    batch.push_back({kv::BatchOpType::kGet, "batch-a", "", 0});
    batch.push_back({kv::BatchOpType::kSet, "batch-b", "bye", 0});
    batch.push_back({kv::BatchOpType::kDelete, "batch-b", "", 0});
    for (const kv::BatchOpResult& r : s.ExecuteBatch(batch)) {
      ASSERT_TRUE(r.status.ok());
    }
    ASSERT_TRUE(s.VerifyFullIntegrity().ok());
  };
  apply(hw);
  apply(sw);

  // Enclave-side secure metadata (keys + bucket-set MAC hashes) must match.
  EXPECT_EQ(hw.ExportSecureMetadata(), sw.ExportSecureMetadata());

  // Every surviving sealed entry must be byte-identical: header fields,
  // IV/counter, MAC, and ciphertext.
  size_t compared = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    kv::EntryHeader* he = StoreTestPeer::RawEntry(hw, key);
    kv::EntryHeader* se = StoreTestPeer::RawEntry(sw, key);
    ASSERT_EQ(he == nullptr, se == nullptr) << key;
    if (he == nullptr) {
      continue;
    }
    EXPECT_EQ(he->key_size, se->key_size) << key;
    EXPECT_EQ(he->val_size, se->val_size) << key;
    EXPECT_EQ(he->key_hint, se->key_hint) << key;
    EXPECT_EQ(he->flags, se->flags) << key;
    EXPECT_EQ(0, std::memcmp(he->iv_ctr, se->iv_ctr, 16)) << key;
    EXPECT_EQ(0, std::memcmp(he->mac, se->mac, 16)) << key;
    ASSERT_EQ(he->CiphertextSize(), se->CiphertextSize()) << key;
    EXPECT_EQ(0, std::memcmp(he->Ciphertext(), se->Ciphertext(), he->CiphertextSize())) << key;
    ++compared;
  }
  EXPECT_GT(compared, 100u);

  // And the plaintext views agree too (decryption through either backend).
  EXPECT_EQ(hw.Get("batch-a").value(), "42-tail");
  EXPECT_EQ(sw.Get("batch-a").value(), "42-tail");
}

}  // namespace
}  // namespace shield::shieldstore
