// Kill -9 durability: a REAL server process (the shieldstore_server binary,
// durable-ack WAL mode, aggressive compaction) is SIGKILL'd mid-load with no
// chance to flush, then relaunched on the same --heal-dir. Every write the
// client saw acknowledged must read back exactly, and the shard logs on disk
// must have stayed bounded despite ~10x the compaction threshold flowing
// through them. This is the only test that exercises the true crash path —
// the in-process matrix (wal_sharding_test) can only simulate it.
#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/client.h"
#include "src/sgx/attestation.h"

#ifndef SHIELD_SERVER_BIN
#error "build must define SHIELD_SERVER_BIN (path to shieldstore_server)"
#endif

namespace shield {
namespace {

constexpr size_t kCompactBytes = 8 * 1024;
constexpr char kAuthoritySeed[] = "crash-ias";

struct ServerProc {
  pid_t pid = -1;
  int out = -1;  // read end of the child's stdout
  sgx::Measurement measurement{};
};

void KillServer(ServerProc* proc, int sig) {
  if (proc->pid > 0) {
    ::kill(proc->pid, sig);
    int status = 0;
    ::waitpid(proc->pid, &status, 0);
    proc->pid = -1;
  }
  if (proc->out >= 0) {
    ::close(proc->out);
    proc->out = -1;
  }
}

// Launches the daemon and blocks until it prints its measurement line
// (which it emits only after the listener is up). extra_args are appended to
// the command line; extra_env entries are set in the CHILD only, between
// fork and execv — this is how the persist-heap matrix arms
// SHIELD_ARENA_CRASH without poisoning the test process's own environment.
bool StartServer(const std::string& heal_dir, uint16_t port, ServerProc* proc,
                 const std::vector<std::string>& extra_args = {},
                 const std::vector<std::pair<std::string, std::string>>& extra_env = {}) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return false;
  }
  const std::string port_s = std::to_string(port);
  const std::string compact_s = std::to_string(kCompactBytes);
  std::vector<const char*> argv = {
      SHIELD_SERVER_BIN, "--port", port_s.c_str(), "--partitions", "4",
      "--buckets", "4096", "--heal-dir", heal_dir.c_str(),
      "--scrub-interval-ms", "2", "--authority-seed", kAuthoritySeed,
      "--wal-window-us", "100", "--wal-group-ops", "8",
      "--wal-compact-bytes", compact_s.c_str()};
  for (const std::string& arg : extra_args) {
    argv.push_back(arg.c_str());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    for (const auto& [name, value] : extra_env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    ::execv(SHIELD_SERVER_BIN, const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  ::close(pipe_fds[1]);
  proc->pid = pid;
  proc->out = pipe_fds[0];

  // Scan child stdout for "enclave measurement (give to clients): <hex>".
  std::string buffered;
  char chunk[256];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(proc->out, chunk, sizeof(chunk));
    if (n <= 0) {
      KillServer(proc, SIGKILL);
      return false;
    }
    buffered.append(chunk, static_cast<size_t>(n));
    const size_t tag = buffered.find("clients): ");
    if (tag == std::string::npos) {
      continue;
    }
    const size_t hex_at = tag + strlen("clients): ");
    if (buffered.size() < hex_at + 64) {
      continue;
    }
    const Bytes digest = HexDecode(std::string_view(buffered).substr(hex_at, 64));
    if (digest.size() != proc->measurement.size()) {
      KillServer(proc, SIGKILL);
      return false;
    }
    std::memcpy(proc->measurement.data(), digest.data(), digest.size());
    // Put the pipe in non-blocking mode so the child never stalls on a full
    // pipe buffer while we stop reading it.
    ::fcntl(proc->out, F_SETFL, O_NONBLOCK);
    return true;
  }
  KillServer(proc, SIGKILL);
  return false;
}

TEST(WalCrashTest, Kill9MidLoadLosesNoAckedWriteAndLogsStayBounded) {
  const std::string dir =
      ::testing::TempDir() + "/wal_crash_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const uint16_t port = static_cast<uint16_t>(23000 + ::getpid() % 2000);
  const sgx::AttestationAuthority authority(AsBytes(kAuthoritySeed));

  ServerProc server;
  ASSERT_TRUE(StartServer(dir, port, &server)) << "daemon did not come up";

  // Durable-ack load: 1200 writes cycling 256 keys pushes ~10x the
  // compaction threshold through every shard while the maintenance thread
  // compacts behind it. Every third round goes out as one kBatch frame —
  // a batched ack is the same fsync'd promise as a singleton ack, recorded
  // per sub-op. Every ok() status is such a promise.
  std::map<std::string, std::string> acked;
  {
    net::Client client(authority, server.measurement);
    ASSERT_TRUE(client.Connect(port).ok());
    for (int i = 0; i < 1200;) {
      if (i % 3 == 0 && i + 8 <= 1200) {
        std::vector<net::Request> ops;
        for (int j = 0; j < 8; ++j) {
          ops.push_back({net::OpCode::kSet, "k" + std::to_string((i + j) % 256),
                         "v" + std::to_string(i + j) + std::string(200, 'x'), 0});
        }
        const Result<std::vector<net::Response>> results = client.ExecuteBatch(ops);
        if (results.ok()) {
          for (size_t j = 0; j < ops.size(); ++j) {
            if ((*results)[j].status == Code::kOk) {
              acked[ops[j].key] = ops[j].value;
            }
          }
        }
        i += 8;
      } else {
        const std::string key = "k" + std::to_string(i % 256);
        const std::string value = "v" + std::to_string(i) + std::string(200, 'x');
        if (client.Set(key, value).ok()) {
          acked[key] = value;
        }
        ++i;
      }
    }
    ASSERT_GE(acked.size(), 256u) << "load never got going";

    // SIGKILL with the connection still hot: no destructor, no flush, no
    // graceful anything runs in the server.
    ::kill(server.pid, SIGKILL);
    // Writes racing the kill may still be acked (fsync'd before death) —
    // keep recording until the socket dies.
    for (int i = 0; i < 200; ++i) {
      const std::string key = "late" + std::to_string(i);
      if (!client.Set(key, "after-kill").ok()) {
        break;
      }
      acked[key] = "after-kill";
    }
  }
  KillServer(&server, SIGKILL);  // reap

  // The compactor kept every shard log bounded: threshold + the burst a
  // shard can absorb between two of its round-robin turns, with sealing
  // slack — NOT proportional to the ~10x total bytes written.
  size_t shard_files = 0;
  for (size_t s = 0; s < 4; ++s) {
    const std::string shard_log = dir + "/wal.log.p" + std::to_string(s);
    if (!std::filesystem::exists(shard_log)) {
      continue;
    }
    ++shard_files;
    EXPECT_LT(std::filesystem::file_size(shard_log), 3 * kCompactBytes)
        << shard_log << " grew unboundedly";
  }
  EXPECT_EQ(shard_files, 4u);

  // Relaunch on the same heal-dir: restore = snapshots + committed shard
  // logs. Zero acknowledged-write loss, byte for byte.
  ASSERT_TRUE(StartServer(dir, port, &server)) << "daemon did not restart";
  net::Client verify(authority, server.measurement);
  ASSERT_TRUE(verify.Connect(port).ok());
  for (const auto& [key, value] : acked) {
    const Result<std::string> got = verify.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << key;
  }
  verify.Close();
  KillServer(&server, SIGTERM);
  std::filesystem::remove_all(dir);
}

// Persist-heap crash matrix against the REAL binary: for each arena commit
// crash point, (1) load acked writes into a --persist-heap server and
// SIGKILL it hot, (2) relaunch with SHIELD_ARENA_CRASH armed so the boot-time
// checkpoint dies by SIGKILL mid-commit at exactly that point, (3) relaunch
// clean and demand every acknowledged write back byte for byte. The arena
// file has now survived two unclean deaths — one arbitrary, one surgically
// placed inside the plan/commit protocol — and recovery must still land on a
// consistent slot plus the WAL tail.
TEST(WalCrashTest, PersistHeapKill9CrashMatrixLosesNoAckedWrite) {
  const sgx::AttestationAuthority authority(AsBytes(kAuthoritySeed));
  const char* const kPoints[] = {"plan", "apply", "precommit", "presync"};
  for (const char* point : kPoints) {
    SCOPED_TRACE(point);
    const std::string dir = ::testing::TempDir() + "/persist_crash_" + point + "_" +
                            std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const uint16_t port = static_cast<uint16_t>(25000 + ::getpid() % 2000);
    const std::vector<std::string> persist_args = {
        "--persist-heap", dir + "/heap", "--persist-capacity-mb", "16"};

    // Run 1: durable-ack load. Values are big enough that the compactor's
    // arena checkpoints fire mid-load, so the kill lands on a file holding
    // BOTH committed state and a live WAL tail.
    ServerProc server;
    ASSERT_TRUE(StartServer(dir, port, &server, persist_args)) << "daemon did not come up";
    std::map<std::string, std::string> acked;
    {
      net::Client client(authority, server.measurement);
      ASSERT_TRUE(client.Connect(port).ok());
      for (int i = 0; i < 300; ++i) {
        const std::string key = "pk" + std::to_string(i % 128);
        const std::string value = "pv" + std::to_string(i) + "-" + point + std::string(120, 'y');
        if (client.Set(key, value).ok()) {
          acked[key] = value;
        }
      }
      ASSERT_GE(acked.size(), 128u) << "load never got going";
      ::kill(server.pid, SIGKILL);
    }
    KillServer(&server, SIGKILL);  // reap

    // Run 2: the recovery checkpoint itself dies at the injected point. The
    // measurement line prints only after SelfHealer::Start, so a commit-time
    // SIGKILL surfaces as a failed launch — which is exactly the assertion.
    EXPECT_FALSE(StartServer(dir, port, &server, persist_args,
                             {{"SHIELD_ARENA_CRASH", point}, {"SHIELD_ARENA_CRASH_KILL", "1"}}))
        << "injected " << point << " crash did not kill the boot-time checkpoint";

    // Run 3: clean relaunch. Fully-old-or-fully-new arena + WAL tail replay
    // must reproduce every acknowledged write.
    ASSERT_TRUE(StartServer(dir, port, &server, persist_args))
        << "daemon did not recover after " << point << " crash";
    net::Client verify(authority, server.measurement);
    ASSERT_TRUE(verify.Connect(port).ok());
    for (const auto& [key, value] : acked) {
      const Result<std::string> got = verify.Get(key);
      ASSERT_TRUE(got.ok()) << key << " lost after " << point << ": " << got.status().ToString();
      EXPECT_EQ(got.value(), value) << key;
    }
    verify.Close();
    KillServer(&server, SIGTERM);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace shield
