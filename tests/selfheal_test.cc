// Online self-healing, end to end over the network: a partition is tampered
// while clients drive live traffic; the server (never restarted) quarantines
// it, keeps serving every other partition, returns the typed
// kPartitionRecovering for the quarantined one, heals it from snapshot +
// oplog on its maintenance thread, and loses not one acknowledged write.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/faultinject/tamper.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield {
namespace {

using faultinject::TamperAgent;
using faultinject::TamperMode;
using net::Client;
using net::ClientOptions;
using net::Server;
using net::ServerOptions;
using shieldstore::OpLogOptions;
using shieldstore::PartitionedStore;
using shieldstore::SelfHealer;
using shieldstore::SelfHealOptions;
using shieldstore::WriteAheadStore;

sgx::EnclaveConfig FastEnclave() {
  sgx::EnclaveConfig c;
  c.name = "selfheal-test";
  c.epc.epc_bytes = 16u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 128u << 20;
  c.rng_seed = ToBytes("selfheal-test");
  return c;
}

shieldstore::Options StoreOptions() {
  shieldstore::Options o;
  o.num_buckets = 1024;
  o.heap_chunk_bytes = 1u << 20;
  o.scrub_budget_buckets = 128;
  return o;
}

// Full production stack: partitioned store + write-ahead log + self-healer
// driven by the network server's maintenance thread.
class SelfHealNetTest : public ::testing::Test {
 protected:
  SelfHealNetTest()
      : enclave_(FastEnclave()),
        authority_(AsBytes("ias-root")),
        store_(enclave_, StoreOptions(), 4),
        sealer_(AsBytes("fuse"), enclave_.measurement()) {
    dir_ = ::testing::TempDir() + "/selfheal_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = dir_ + "/counters.bin";
    counter_opts.increment_cost_cycles = 0;
    counters_ = std::make_unique<sgx::MonotonicCounterService>(counter_opts);

    OpLogOptions log_opts;
    log_opts.path = dir_ + "/wal.log";
    wal_ = std::make_unique<WriteAheadStore>(store_, sealer_, *counters_, log_opts);

    SelfHealOptions heal_opts;
    heal_opts.directory = dir_ + "/snapshots";
    healer_ = std::make_unique<SelfHealer>(*wal_, sealer_, *counters_, heal_opts);
  }

  ~SelfHealNetTest() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
    std::filesystem::remove_all(dir_);
  }

  void StartStack() {
    ASSERT_TRUE(wal_->Open().ok());
    ASSERT_TRUE(healer_->Start().ok());
    ServerOptions options;
    options.maintenance = [this] { healer_->Tick(); };
    options.maintenance_interval_ms = 2;
    server_ = std::make_unique<Server>(enclave_, *wal_, authority_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  // Waits until no partition is quarantined (recovery completed).
  void WaitHealed(std::chrono::seconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (store_.QuarantinedCount() > 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "recovery did not complete: " << healer_->last_error().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  sgx::Enclave enclave_;
  sgx::AttestationAuthority authority_;
  PartitionedStore store_;
  sgx::SealingService sealer_;
  std::unique_ptr<sgx::MonotonicCounterService> counters_;
  std::unique_ptr<WriteAheadStore> wal_;
  std::unique_ptr<SelfHealer> healer_;
  std::unique_ptr<Server> server_;
  std::string dir_;
};

TEST_F(SelfHealNetTest, TamperedPartitionHealsUnderLiveTrafficWithNoAckedLoss) {
  StartStack();

  // Seed through the network so every write is acknowledged and logged.
  Client seeder(authority_, enclave_.measurement());
  ASSERT_TRUE(seeder.Connect(server_->port()).ok());
  std::map<std::string, std::string> seeded;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "seed-" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(seeder.Set(key, value).ok());
    seeded[key] = value;
  }

  // Live load: three client threads keep writing and reading their own keys
  // (which hash across all partitions) with retry-on-recovering enabled.
  // Operations on healthy partitions must never fail; operations on the
  // tampered one may surface kIntegrityFailure (the detecting op) and are
  // otherwise absorbed by the typed-retry loop.
  constexpr int kLoadThreads = 3;
  constexpr size_t kTamperTarget = 0;
  std::atomic<bool> stop_load{false};
  std::atomic<int> healthy_partition_failures{0};
  std::atomic<uint64_t> ops_done{0};
  std::vector<std::map<std::string, std::string>> acked(kLoadThreads);
  std::vector<std::thread> load;
  for (int t = 0; t < kLoadThreads; ++t) {
    load.emplace_back([&, t] {
      ClientOptions copts;
      copts.recovering_retries = 200;
      copts.recovering_backoff_ms = 5;
      Client client(authority_, enclave_.measurement(), true, copts);
      if (!client.Connect(server_->port()).ok()) {
        ++healthy_partition_failures;
        return;
      }
      int round = 0;
      while (!stop_load.load()) {
        const std::string key =
            "live-t" + std::to_string(t) + "-" + std::to_string(round % 20);
        const std::string value = "r" + std::to_string(round);
        const bool on_target = store_.PartitionOf(key) == kTamperTarget;
        if (client.Set(key, value).ok()) {
          acked[t][key] = value;
        } else if (!on_target) {
          ++healthy_partition_failures;
        }
        const std::string probe = "seed-" + std::to_string(round % 200);
        Result<std::string> got = client.Get(probe);
        if (store_.PartitionOf(probe) != kTamperTarget &&
            (!got.ok() || got.value() != seeded[probe])) {
          ++healthy_partition_failures;
        }
        ++ops_done;
        ++round;
      }
    });
  }

  // Let the load warm up, then strike partition 0 under the facade lock
  // (the adversary hitting between two enclave operations).
  while (ops_done.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t served_before = server_->requests_served();
  const uint64_t recoveries_before = healer_->recoveries();
  TamperAgent agent(99);
  ASSERT_TRUE(agent.TamperPartition(store_, kTamperTarget, TamperMode::kMacForge).ok());
  const std::string victim = agent.last_target_key();
  ASSERT_EQ(store_.PartitionOf(victim), kTamperTarget);

  // A no-retry probe watches the victim key: it must see only typed codes
  // (kIntegrityFailure from the detecting op, kPartitionRecovering while
  // healing) and then a healthy value again — never a wrong one. (No ASSERTs
  // inside this window: load threads are still joinable.)
  ClientOptions no_retry;
  Client probe(authority_, enclave_.measurement(), true, no_retry);
  const bool probe_connected = probe.Connect(server_->port()).ok();
  const bool victim_seeded = seeded.count(victim) > 0;
  bool saw_typed_error = false;
  bool healed_readback = false;
  std::string probe_violation;
  const auto probe_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (probe_connected && std::chrono::steady_clock::now() < probe_deadline) {
    Result<std::string> got = probe.Get(victim);
    if (got.ok()) {
      // Seeded keys are immutable in this test, so a successful read must be
      // exact; live keys keep changing under their owner thread.
      if (victim_seeded && got.value() != seeded[victim]) {
        probe_violation = "wrong value '" + got.value() + "' for " + victim;
        break;
      }
      // Done once a recovery ran (a load thread may have triggered detection
      // and the maintenance thread healed between our probes).
      if (saw_typed_error || healer_->recoveries() > recoveries_before) {
        healed_readback = true;
        break;
      }
    } else {
      const Code code = got.status().code();
      if (code != Code::kIntegrityFailure && code != Code::kPartitionRecovering) {
        probe_violation = "unexpected error: " + got.status().ToString();
        break;
      }
      saw_typed_error = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Wait (without asserting) for the maintenance thread to finish healing.
  // The quarantine flag clears inside RecoverOne() before Tick() bumps the
  // recovery counter, so wait for both — otherwise a preempted maintenance
  // thread makes recoveries() read 0 on an already-healed store.
  bool healed = false;
  const auto heal_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < heal_deadline) {
    if (store_.QuarantinedCount() == 0 &&
        healer_->recoveries() > recoveries_before) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  stop_load.store(true);
  for (auto& t : load) {
    t.join();
  }

  ASSERT_TRUE(probe_connected);
  EXPECT_TRUE(probe_violation.empty()) << probe_violation;
  ASSERT_TRUE(healed) << "recovery did not complete: "
                      << healer_->last_error().ToString();
  EXPECT_TRUE(saw_typed_error || healer_->recoveries() > recoveries_before)
      << "tamper was never surfaced";
  EXPECT_TRUE(healed_readback) << "victim key never came back healthy";

  // (a) other partitions never returned an error;
  EXPECT_EQ(healthy_partition_failures.load(), 0);
  // (b) the healer actually ran a recovery on the live server;
  EXPECT_GE(healer_->recoveries(), 1u);
  // (c) the server was never restarted — same object, still serving, with
  //     strictly more requests than before the attack;
  EXPECT_GT(server_->requests_served(), served_before);
  // (d) zero acknowledged-write loss: every seeded and every live-acked
  //     write reads back exactly, including keys in the healed partition.
  Client verify(authority_, enclave_.measurement());
  ASSERT_TRUE(verify.Connect(server_->port()).ok());
  for (const auto& [key, value] : seeded) {
    Result<std::string> got = verify.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << key;
  }
  for (const auto& per_thread : acked) {
    for (const auto& [key, value] : per_thread) {
      Result<std::string> got = verify.Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(got.value(), value) << key;
    }
  }
  // The full store passes a fresh audit.
  EXPECT_TRUE(store_.ScrubAll().ok());
}

TEST_F(SelfHealNetTest, BackgroundScrubDetectsAndHealsSilentTamper) {
  StartStack();

  Client client(authority_, enclave_.measurement());
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  std::map<std::string, std::string> seeded;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "quiet-" + std::to_string(i);
    ASSERT_TRUE(client.Set(key, "v" + std::to_string(i)).ok());
    seeded[key] = "v" + std::to_string(i);
  }

  // Corrupt a partition and then issue NO client operation at all: only the
  // paced background scrub can notice. It must quarantine and heal without
  // any foreground traffic.
  TamperAgent agent(41);
  ASSERT_TRUE(agent.TamperPartition(store_, 1, TamperMode::kBitFlipCiphertext).ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (healer_->recoveries() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "scrub never detected the tamper: " << healer_->last_error().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  WaitHealed(std::chrono::seconds(30));
  EXPECT_GE(healer_->violations_detected() + healer_->recoveries(), 1u);

  // Every acknowledged write survived the silent attack.
  for (const auto& [key, value] : seeded) {
    Result<std::string> got = client.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << key;
  }
  EXPECT_TRUE(store_.ScrubAll().ok());
}

}  // namespace
}  // namespace shield
