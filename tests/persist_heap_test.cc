// mmap-backed persistent untrusted heap, end to end: O(1) restart attach +
// WAL-tail-only replay, crash-matrix durability (fully-old-or-fully-new, no
// acked-write loss), incremental msync checkpoints, lazy MAC verification
// catching arena-file tamper (live and across a restart), and file-shipped
// replica bootstrap.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "src/alloc/persistent_arena.h"
#include "src/faultinject/tamper.h"
#include "src/obs/metrics.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"
#include "src/shieldstore/store.h"

namespace shield::shieldstore {

// White-box access (same friend hook the engine tests use): the arena ref of
// a key's entry IS its byte offset in the partition's heap file, which is
// what a host-side file attack needs to aim at.
class StoreTestPeer {
 public:
  static uint64_t EntryRef(Store& s, std::string_view key) {
    const size_t bucket = s.BucketIndex(kv::BucketHash(*s.keys_, key));
    for (uint64_t ref = s.buckets_[bucket].head_ref; ref != 0;) {
      kv::EntryHeader* e = s.Deref(ref);
      if (kv::EntryKeyEquals(*s.keys_, *e, key)) {
        return ref;
      }
      ref = e->next_ref;
    }
    return 0;
  }

  static size_t EntryKeySize(Store& s, uint64_t ref) {
    return s.Deref(ref)->key_size;
  }
};

}  // namespace shield::shieldstore

namespace shield {
namespace {

using faultinject::TamperAgent;
using shieldstore::PartitionedStore;
using shieldstore::SelfHealer;
using shieldstore::SelfHealOptions;
using shieldstore::StoreTestPeer;
using shieldstore::WriteAheadStore;

sgx::EnclaveConfig FastEnclave() {
  sgx::EnclaveConfig c;
  c.name = "persist-heap-test";
  c.epc.epc_bytes = 16u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 64u << 20;
  c.rng_seed = ToBytes("persist-heap-test");
  return c;
}

// One full durable stack over a directory. Rebuilding a Stack on the same
// directory IS the restart: a fresh enclave with the same measurement maps
// the same heap files and unseals the same metadata.
struct Stack {
  std::unique_ptr<obs::Registry> metrics;
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<sgx::SealingService> sealer;
  std::unique_ptr<sgx::MonotonicCounterService> counters;
  std::unique_ptr<PartitionedStore> store;
  std::unique_ptr<WriteAheadStore> wal;
  std::unique_ptr<SelfHealer> healer;

  Status Boot() {
    if (Status st = wal->Open(); !st.ok()) {
      return st;
    }
    if (Status st = healer->Restore(); !st.ok()) {
      return st;
    }
    return healer->Start();
  }
};

class PersistHeapTest : public ::testing::Test {
 protected:
  static constexpr size_t kPartitions = 2;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/persist_heap_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  Stack MakeStack(const std::string& dir) {
    Stack s;
    s.metrics = std::make_unique<obs::Registry>();
    s.enclave = std::make_unique<sgx::Enclave>(FastEnclave());
    shieldstore::Options options;
    options.num_buckets = 256;
    options.heap_chunk_bytes = 1u << 20;
    options.metrics = s.metrics.get();
    options.persist_dir = dir + "/heap";
    options.persist_capacity_bytes = 16u << 20;
    s.store = std::make_unique<PartitionedStore>(*s.enclave, options, kPartitions);
    s.sealer = std::make_unique<sgx::SealingService>(AsBytes("fuse"), s.enclave->measurement());
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = dir + "/counters.bin";
    counter_opts.increment_cost_cycles = 0;
    s.counters = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
    shieldstore::OpLogOptions log_opts;
    log_opts.path = dir + "/wal.log";
    log_opts.metrics = s.metrics.get();
    s.wal = std::make_unique<WriteAheadStore>(*s.store, *s.sealer, *s.counters, log_opts);
    SelfHealOptions heal_opts;
    heal_opts.directory = dir + "/snapshots";
    s.healer = std::make_unique<SelfHealer>(*s.wal, *s.sealer, *s.counters, heal_opts);
    return s;
  }

  // Heap-file offset of one byte inside `key`'s VALUE ciphertext, plus the
  // partition that serves the key.
  void LocateValueByte(Stack& s, const std::string& key, size_t* partition,
                       std::string* heap_file, uint64_t* offset) {
    *partition = s.store->PartitionOf(key);
    *heap_file = s.store->persist_dir() + "/p" + std::to_string(*partition) + ".heap";
    const Status st = s.store->WithPartitionLocked(*partition, [&](shieldstore::Store& p) {
      const uint64_t ref = StoreTestPeer::EntryRef(p, key);
      if (ref == 0) {
        return Status(Code::kNotFound, "no entry for " + key);
      }
      *offset = ref + sizeof(kv::EntryHeader) + StoreTestPeer::EntryKeySize(p, ref);
      return Status::Ok();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::string dir_;
};

TEST_F(PersistHeapTest, RestartRoundTripWithOverwritesAndDeletes) {
  std::map<std::string, std::string> expected;
  {
    Stack s = MakeStack(dir_);
    ASSERT_TRUE(s.Boot().ok());
    for (int i = 0; i < 400; ++i) {
      const std::string k = "key-" + std::to_string(i);
      const std::string v = "value-" + std::to_string(i * 7);
      ASSERT_TRUE(s.wal->Set(k, v).ok());
      expected[k] = v;
    }
    // Fold the first wave into the arena, then keep mutating so the restart
    // exercises BOTH the attached generation and the WAL tail on top of it.
    ASSERT_TRUE(s.store->CheckpointAll(*s.sealer, *s.counters).ok());
    for (int i = 0; i < 120; ++i) {
      const std::string k = "key-" + std::to_string(i);
      const std::string v = "rewritten-" + std::to_string(i) + std::string(64, 'x');
      ASSERT_TRUE(s.wal->Set(k, v).ok());
      expected[k] = v;
    }
    for (int i = 300; i < 400; ++i) {
      const std::string k = "key-" + std::to_string(i);
      ASSERT_TRUE(s.wal->Delete(k).ok());
      expected.erase(k);
    }
  }

  Stack s = MakeStack(dir_);
  ASSERT_TRUE(s.Boot().ok());
  EXPECT_EQ(s.store->Size(), expected.size());
  for (const auto& [k, v] : expected) {
    const Result<std::string> got = s.wal->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status().ToString();
    EXPECT_EQ(*got, v);
  }
  for (int i = 300; i < 400; ++i) {
    EXPECT_EQ(s.wal->Get("key-" + std::to_string(i)).status().code(), Code::kNotFound);
  }
  // The reads above were each bucket set's deferred restart-time check.
  EXPECT_GT(s.metrics->GetCounter("heap.lazy_verified").Value(), 0u);
  // And a full scrub pays down every set that was never touched.
  EXPECT_TRUE(s.store->ScrubAll().ok());
  EXPECT_EQ(s.store->QuarantinedCount(), 0u);
  EXPECT_GT(s.metrics->GetGauge("heap.restart_ns").Value(), 0);
}

// kill -9 at every arena commit point: acked writes survive because the heap
// file recovers to the previous committed generation and the WAL tail —
// which still holds everything acked since — replays on top.
TEST_F(PersistHeapTest, CrashMatrixLosesNoAckedWrite) {
  using CP = alloc::PersistentArena::CrashPoint;
  int round = 0;
  for (const CP point : {CP::kPlanWritten, CP::kMidApply, CP::kPreCommit, CP::kPreSuperSync}) {
    const std::string dir = dir_ + "/round" + std::to_string(round++);
    std::filesystem::create_directories(dir);
    std::map<std::string, std::string> acked;
    {
      Stack s = MakeStack(dir);
      ASSERT_TRUE(s.Boot().ok());
      for (int i = 0; i < 200; ++i) {
        const std::string k = "crash-key-" + std::to_string(i);
        const std::string v = "v" + std::to_string(i) + std::to_string(round);
        ASSERT_TRUE(s.wal->Set(k, v).ok());
        acked[k] = v;
      }
      // The checkpoint dies mid-protocol on every partition's arena.
      for (size_t p = 0; p < kPartitions; ++p) {
        ASSERT_NE(s.store->partition_arena(p), nullptr);
        s.store->partition_arena(p)->InjectCrash(point);
      }
      const Status st = s.store->CheckpointAll(*s.sealer, *s.counters);
      ASSERT_EQ(st.code(), Code::kIoError) << "injection should have fired: " << st.ToString();
    }  // teardown unmaps without msync — the in-memory mirror dies with it

    Stack s = MakeStack(dir);
    ASSERT_TRUE(s.Boot().ok()) << "crash point " << round;
    ASSERT_EQ(s.store->Size(), acked.size());
    for (const auto& [k, v] : acked) {
      const Result<std::string> got = s.wal->Get(k);
      ASSERT_TRUE(got.ok()) << k << ": " << got.status().ToString();
      EXPECT_EQ(*got, v);
    }
    EXPECT_TRUE(s.store->ScrubAll().ok());
  }
}

TEST_F(PersistHeapTest, IncrementalCheckpointSyncsOnlyDirtyState) {
  Stack s = MakeStack(dir_);
  ASSERT_TRUE(s.Boot().ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(s.wal->Set("bulk-" + std::to_string(i), std::string(100, 'a' + i % 26)).ok());
  }
  ASSERT_TRUE(s.store->CheckpointAll(*s.sealer, *s.counters).ok());
  uint64_t full = 0;
  for (size_t p = 0; p < kPartitions; ++p) {
    full += s.store->partition_arena(p)->last_commit_msync_bytes();
  }
  const int64_t before = s.metrics->GetCounter("heap.msync_bytes").Value();
  // Touch a handful of keys; the next checkpoint must pay for them alone.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.wal->Set("bulk-" + std::to_string(i * 97), "touched").ok());
  }
  ASSERT_TRUE(s.store->CheckpointAll(*s.sealer, *s.counters).ok());
  uint64_t incremental = 0;
  for (size_t p = 0; p < kPartitions; ++p) {
    incremental += s.store->partition_arena(p)->last_commit_msync_bytes();
  }
  EXPECT_LT(incremental, full / 8)
      << "incremental checkpoint synced " << incremental << " of a " << full
      << "-byte full one";
  // heap.msync_bytes observed the same incremental cost.
  EXPECT_EQ(s.metrics->GetCounter("heap.msync_bytes").Value() - before,
            static_cast<int64_t>(incremental));
}

TEST_F(PersistHeapTest, LiveArenaFileTamperDetectedBeforeServing) {
  Stack s = MakeStack(dir_);
  ASSERT_TRUE(s.Boot().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.wal->Set("live-" + std::to_string(i), "payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(s.store->CheckpointAll(*s.sealer, *s.counters).ok());
  const std::string victim = "live-42";
  size_t partition = 0;
  std::string heap_file;
  uint64_t offset = 0;
  ASSERT_NO_FATAL_FAILURE(LocateValueByte(s, victim, &partition, &heap_file, &offset));
  // Host-side attack straight at the backing file; MAP_SHARED makes the
  // write visible to the live mapping.
  ASSERT_TRUE(TamperAgent::FlipFileByte(heap_file, offset).ok());
  EXPECT_EQ(s.wal->Get(victim).status().code(), Code::kIntegrityFailure);
  EXPECT_TRUE(s.store->IsQuarantined(partition));
}

TEST_F(PersistHeapTest, OfflineTamperCaughtByLazyVerificationAfterRestart) {
  std::string heap_file;
  uint64_t offset = 0;
  size_t partition = 0;
  std::string victim;
  {
    Stack s = MakeStack(dir_);
    ASSERT_TRUE(s.Boot().ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(s.wal->Set("off-" + std::to_string(i), "payload-" + std::to_string(i)).ok());
    }
    victim = "off-7";
    ASSERT_TRUE(s.store->CheckpointAll(*s.sealer, *s.counters).ok());
    // Truncate the WAL tail: the victim must exist ONLY in the arena, else
    // the restart's replay would legitimately reseal it over the tamper.
    ASSERT_TRUE(s.wal->ResetAllLogs().ok());
    ASSERT_NO_FATAL_FAILURE(LocateValueByte(s, victim, &partition, &heap_file, &offset));
  }
  // Tamper while the store is down: exactly what the deferred verification
  // exists for — attach stays O(1), the flip surfaces on first touch.
  ASSERT_TRUE(TamperAgent::FlipFileByte(heap_file, offset).ok());

  Stack s = MakeStack(dir_);
  ASSERT_TRUE(s.Boot().ok()) << "attach must NOT eagerly verify every entry";
  EXPECT_EQ(s.wal->Get(victim).status().code(), Code::kIntegrityFailure)
      << "tampered entry must never be served";
  EXPECT_TRUE(s.store->IsQuarantined(partition));
  // The scrub-based persist recovery cannot clean a genuinely tampered
  // partition: it stays quarantined (restore it from a replica's files).
  for (int i = 0; i < 10; ++i) {
    s.healer->Tick();
  }
  EXPECT_TRUE(s.store->IsQuarantined(partition));
  EXPECT_GT(s.healer->failed_recoveries(), 0u);
}

TEST_F(PersistHeapTest, ReplicaBootstrapFromExportedFiles) {
  const std::string replica_dir = dir_ + "/replica";
  std::filesystem::create_directories(replica_dir);
  std::map<std::string, std::string> expected;
  {
    Stack s = MakeStack(dir_);
    ASSERT_TRUE(s.Boot().ok());
    for (int i = 0; i < 300; ++i) {
      const std::string k = "rep-" + std::to_string(i);
      const std::string v = "value-" + std::to_string(i);
      ASSERT_TRUE(s.wal->Set(k, v).ok());
      expected[k] = v;
    }
    ASSERT_TRUE(s.wal->ExportHeapFiles(replica_dir + "/heap").ok());
    // The sealed metadata is rollback-bound to the monotonic counters; a
    // bootstrap ships the counter file alongside the heap files.
    std::filesystem::copy_file(dir_ + "/counters.bin", replica_dir + "/counters.bin",
                               std::filesystem::copy_options::overwrite_existing);
  }

  Stack replica = MakeStack(replica_dir);
  ASSERT_TRUE(replica.Boot().ok());
  EXPECT_EQ(replica.store->Size(), expected.size());
  for (const auto& [k, v] : expected) {
    const Result<std::string> got = replica.wal->Get(k);
    ASSERT_TRUE(got.ok()) << k << ": " << got.status().ToString();
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(replica.store->ScrubAll().ok());

  // A tampered copy must NOT bootstrap silently: flip one ciphertext byte in
  // the shipped file and the replica detects it on first touch.
  const std::string tampered_dir = dir_ + "/tampered-replica";
  std::filesystem::create_directories(tampered_dir + "/heap");
  for (const auto& entry : std::filesystem::directory_iterator(replica_dir + "/heap")) {
    std::filesystem::copy_file(entry.path(),
                               tampered_dir + "/heap/" + entry.path().filename().string());
  }
  std::filesystem::copy_file(replica_dir + "/counters.bin", tampered_dir + "/counters.bin");
  std::string heap_file;
  uint64_t offset = 0;
  size_t partition = 0;
  ASSERT_NO_FATAL_FAILURE(LocateValueByte(replica, "rep-11", &partition, &heap_file, &offset));
  const std::string tampered_file =
      tampered_dir + "/heap/p" + std::to_string(partition) + ".heap";
  ASSERT_TRUE(TamperAgent::FlipFileByte(tampered_file, offset).ok());

  Stack tampered = MakeStack(tampered_dir);
  ASSERT_TRUE(tampered.Boot().ok());
  EXPECT_EQ(tampered.wal->Get("rep-11").status().code(), Code::kIntegrityFailure);
  EXPECT_TRUE(tampered.store->IsQuarantined(partition));
}

// The sealed route key is what makes the heap files' chain placement valid
// across boots; three restarts in a row must keep resolving every key.
TEST_F(PersistHeapTest, RouteKeyStableAcrossRestarts) {
  {
    Stack s = MakeStack(dir_);
    ASSERT_TRUE(s.Boot().ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(s.wal->Set("stable-" + std::to_string(i), std::to_string(i)).ok());
    }
  }
  for (int boot = 0; boot < 3; ++boot) {
    Stack s = MakeStack(dir_);
    ASSERT_TRUE(s.Boot().ok()) << "boot " << boot;
    for (int i = 0; i < 50; ++i) {
      const Result<std::string> got = s.wal->Get("stable-" + std::to_string(i));
      ASSERT_TRUE(got.ok()) << "boot " << boot << " key " << i;
      EXPECT_EQ(*got, std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace shield
