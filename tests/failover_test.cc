// Cross-process zero-loss failover: a REAL primary process
// (shieldstore_server --replicate-to) ships every committed WAL entry to a
// REAL follower process (--replica-of) while an in-process Router drives
// mixed traffic at the primary. The primary is SIGKILL'd mid-load — no
// flush, no destructors — and the router must promote the follower and serve
// every write that was acked before the kill. Loss is asserted two ways:
// reading every acked key back through the router, AND from the follower's
// replication counters via the kStats verb (the wire twin of
// `shieldstore_cli stats --json`).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/faultinject/nodekiller.h"
#include "src/net/client.h"
#include "src/obs/snapshot.h"
#include "src/router/router.h"
#include "src/sgx/attestation.h"

#ifndef SHIELD_SERVER_BIN
#error "build must define SHIELD_SERVER_BIN (path to shieldstore_server)"
#endif

namespace shield {
namespace {

constexpr char kAuthoritySeed[] = "failover-ias";

struct ServerProc {
  pid_t pid = -1;
  int out = -1;
  sgx::Measurement measurement{};
};

void ReapServer(ServerProc* proc, int sig) {
  if (proc->pid > 0) {
    ::kill(proc->pid, sig);
    int status = 0;
    ::waitpid(proc->pid, &status, 0);
    proc->pid = -1;
  }
  if (proc->out >= 0) {
    ::close(proc->out);
    proc->out = -1;
  }
}

// Launches shieldstore_server with the given extra flags and blocks until it
// prints its measurement line (emitted only once the listener is up — and,
// for a primary, after the replication attach attempt finished).
bool StartServer(const std::string& heal_dir, uint16_t port,
                 const std::vector<std::string>& extra, ServerProc* proc) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return false;
  }
  const std::string port_s = std::to_string(port);
  std::vector<const char*> argv = {
      SHIELD_SERVER_BIN, "--port", port_s.c_str(), "--partitions", "2",
      "--buckets", "4096", "--heal-dir", heal_dir.c_str(),
      "--authority-seed", kAuthoritySeed,
      "--wal-window-us", "100", "--wal-group-ops", "8"};
  for (const std::string& arg : extra) {
    argv.push_back(arg.c_str());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execv(SHIELD_SERVER_BIN, const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  ::close(pipe_fds[1]);
  proc->pid = pid;
  proc->out = pipe_fds[0];

  std::string buffered;
  char chunk[256];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(proc->out, chunk, sizeof(chunk));
    if (n <= 0) {
      ReapServer(proc, SIGKILL);
      return false;
    }
    buffered.append(chunk, static_cast<size_t>(n));
    const size_t tag = buffered.find("clients): ");
    if (tag == std::string::npos) {
      continue;
    }
    const size_t hex_at = tag + strlen("clients): ");
    if (buffered.size() < hex_at + 64) {
      continue;
    }
    const Bytes digest = HexDecode(std::string_view(buffered).substr(hex_at, 64));
    if (digest.size() != proc->measurement.size()) {
      ReapServer(proc, SIGKILL);
      return false;
    }
    std::memcpy(proc->measurement.data(), digest.data(), digest.size());
    ::fcntl(proc->out, F_SETFL, O_NONBLOCK);
    return true;
  }
  ReapServer(proc, SIGKILL);
  return false;
}

TEST(FailoverTest, Kill9PrimaryMidLoadPromotesFollowerWithZeroAckedLoss) {
  const std::string base =
      ::testing::TempDir() + "/failover_" + std::to_string(::getpid());
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base + "/primary");
  std::filesystem::create_directories(base + "/follower");
  const uint16_t primary_port = static_cast<uint16_t>(26000 + ::getpid() % 2000);
  const uint16_t follower_port = primary_port + 2000;
  const sgx::AttestationAuthority authority(AsBytes(kAuthoritySeed));

  // Follower first (so the primary's attach lands), then the primary.
  ServerProc follower;
  ASSERT_TRUE(StartServer(base + "/follower", follower_port,
                          {"--replica-of", std::to_string(primary_port)}, &follower))
      << "follower did not come up";
  ServerProc primary;
  ASSERT_TRUE(StartServer(base + "/primary", primary_port,
                          {"--replicate-to", std::to_string(follower_port)}, &primary))
      << "primary did not come up";
  // Same binary, same enclave config → same measurement: one trust anchor
  // authenticates both nodes (and the shipper's session between them).
  ASSERT_EQ(0, std::memcmp(primary.measurement.data(), follower.measurement.data(),
                           primary.measurement.size()));

  router::RouterOptions options;
  options.probe_interval_ms = 0;  // deterministic: recovery happens on-demand
  options.op_retries = 5;
  options.retry_backoff_ms = 100;
  options.client.connect_attempts = 2;
  options.client.recv_timeout_ms = 2000;
  std::vector<router::RouterNode> nodes;
  nodes.push_back({"n0", primary_port, follower_port});
  router::Router rt(authority, primary.measurement, std::move(nodes), options);
  ASSERT_TRUE(rt.Start().ok());

  // Durable-ack load. Every ok() Set is a promise: logged, fsync'd, and
  // (ship-before-ack) already offered to the follower.
  std::map<std::string, std::string> acked;
  for (int i = 0; i < 400; ++i) {
    const std::string key = "k" + std::to_string(i % 128);
    const std::string value = "v" + std::to_string(i) + std::string(100, 'x');
    if (rt.Set(key, value).ok()) {
      acked[key] = value;
    }
  }
  ASSERT_GE(acked.size(), 128u) << "load never got going";

  // Fail-stop crash with sessions hot, then keep writing: ops racing the
  // kill may ack (fsync'd+shipped before death) or fail over — both fine.
  ASSERT_TRUE(faultinject::NodeKiller::Kill(primary.pid).ok());
  const auto killed_at = std::chrono::steady_clock::now();
  for (int i = 0; i < 40; ++i) {
    const std::string key = "post" + std::to_string(i);
    if (rt.Set(key, "after-kill").ok()) {
      acked[key] = "after-kill";
    }
  }

  // Recovery gate: the router must reach the promoted follower within 5s.
  Result<std::string> probe = rt.Get(acked.begin()->first);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_LT(std::chrono::steady_clock::now() - killed_at, std::chrono::seconds(5));
  EXPECT_EQ(rt.ActivePort("n0"), follower_port);

  // Zero acked-write loss, byte for byte, through the router.
  for (const auto& [key, value] : acked) {
    const Result<std::string> got = rt.Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), value) << key;
  }
  // The promoted node accepts new writes.
  ASSERT_TRUE(rt.Set("post-promotion", "works").ok());
  EXPECT_EQ(rt.Get("post-promotion").value(), "works");
  rt.Stop();

  // Counter-level cross-check straight off the follower (the wire form of
  // `shieldstore_cli stats --json`): every replicated mutation is counted,
  // none were rejected, and the node reports itself primary.
  net::Client stats_client(authority, follower.measurement);
  ASSERT_TRUE(stats_client.Connect(follower_port).ok());
  Result<obs::MetricsSnapshot> snap = stats_client.Stats();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const uint64_t replicated = snap->CounterValue("repl.applied_entries") +
                              snap->CounterValue("repl.snapshot_entries");
  EXPECT_GE(replicated, acked.size()) << "follower applied fewer entries than were acked";
  EXPECT_EQ(snap->CounterValue("repl.rejected_frames"), 0u);
  EXPECT_EQ(snap->GaugeValue("repl.role"), 2) << "follower never promoted";
  // The follower re-logs replicated entries into its OWN WAL: it is durable,
  // promotable state, not a cache.
  EXPECT_GE(snap->CounterValue("wal.records"), acked.size());
  stats_client.Close();

  ReapServer(&primary, SIGKILL);
  ReapServer(&follower, SIGTERM);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace shield
