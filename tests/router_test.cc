// Multi-node layer, all in-process: consistent-hash ring properties, live
// WAL shipping into a warm standby (bootstrap snapshot + tail, watermarks,
// promote semantics), router failover to the standby when the primary's
// server dies, probe-driven automatic recovery, client reconnect with a
// fresh attestation handshake, and the fault-injection primitives.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/faultinject/nodekiller.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/router/hashring.h"
#include "src/router/replica.h"
#include "src/router/router.h"
#include "src/router/shipper.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield {
namespace {

using router::ConsistentHashRing;
using router::ReplicaNode;
using router::Router;
using router::RouterNode;
using router::RouterOptions;
using router::ShipperOptions;
using router::WalShipper;

sgx::EnclaveConfig FastEnclave() {
  sgx::EnclaveConfig c;
  c.name = "router-test-enclave";
  c.epc.epc_bytes = 16u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 128u << 20;
  return c;
}

shieldstore::Options SmallOptions() {
  shieldstore::Options o;
  o.num_buckets = 512;
  o.heap_chunk_bytes = 1 << 20;
  return o;
}

// ------------------------------------------------------------- hash ring

TEST(HashRingTest, DeterministicAcrossInstances) {
  ConsistentHashRing a;
  ConsistentHashRing b;
  for (const char* node : {"alpha", "beta", "gamma"}) {
    a.AddNode(node);
    b.AddNode(node);
  }
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key)) << key;
  }
}

TEST(HashRingTest, BalancesKeysAcrossNodes) {
  ConsistentHashRing ring;
  ring.AddNode("n0");
  ring.AddNode("n1");
  ring.AddNode("n2");
  std::map<std::string, int> owned;
  constexpr int kKeys = 12000;
  for (int i = 0; i < kKeys; ++i) {
    ++owned[ring.NodeFor("user:" + std::to_string(i))];
  }
  ASSERT_EQ(owned.size(), 3u);
  for (const auto& [node, count] : owned) {
    // 64 vnodes/node keeps the spread well inside 2x of fair share.
    EXPECT_GT(count, kKeys / 6) << node << " starved";
    EXPECT_LT(count, kKeys * 2 / 3) << node << " overloaded";
  }
}

TEST(HashRingTest, RemovalOnlyMovesKeysOwnedByTheRemovedNode) {
  ConsistentHashRing ring;
  ring.AddNode("n0");
  ring.AddNode("n1");
  ring.AddNode("n2");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.NodeFor(key);
  }
  ring.RemoveNode("n1");
  ASSERT_FALSE(ring.HasNode("n1"));
  for (const auto& [key, owner] : before) {
    if (owner != "n1") {
      // The consistent-hashing contract: survivors keep every key they had.
      EXPECT_EQ(ring.NodeFor(key), owner) << key;
    } else {
      EXPECT_NE(ring.NodeFor(key), "n1") << key;
    }
  }
  EXPECT_TRUE(ring.NodeFor("anything") == "n0" || ring.NodeFor("anything") == "n2");
}

TEST(HashRingTest, EmptyRingReturnsEmptyName) {
  ConsistentHashRing ring;
  EXPECT_TRUE(ring.NodeFor("key").empty());
  ring.AddNode("solo");
  EXPECT_EQ(ring.NodeFor("key"), "solo");
  ring.RemoveNode("solo");
  EXPECT_TRUE(ring.NodeFor("key").empty());
}

// ----------------------------------------------- primary/follower harness

// A full primary (enclave + store + sharded WAL) plus a follower (enclave +
// store + ReplicaNode) served over loopback — the in-process twin of two
// `shieldstore_server` processes wired with --replicate-to / --replica-of.
class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : primary_enclave_(FastEnclave()),
        follower_enclave_(FastEnclave()),
        authority_(AsBytes("router-ias")),
        primary_store_(primary_enclave_, SmallOptions(), 2),
        follower_store_(follower_enclave_, SmallOptions(), 2) {
    dir_ = ::testing::TempDir() + "/router_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(dir_);
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = dir_ + "/counters.bin";
    counter_opts.increment_cost_cycles = 0;
    counters_ = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
    sealer_ = std::make_unique<sgx::SealingService>(AsBytes("fuse"),
                                                    primary_enclave_.measurement());
    shieldstore::OpLogOptions log_opts;
    log_opts.path = dir_ + "/wal.log";
    log_opts.num_shards = 2;
    wal_ = std::make_unique<shieldstore::WriteAheadStore>(primary_store_, *sealer_,
                                                          *counters_, log_opts);
    EXPECT_TRUE(wal_->Open().ok());
  }

  ~ReplicationTest() override {
    if (wal_ != nullptr) {
      wal_->SetReplicationSink(nullptr);
    }
    StopServers();
    std::filesystem::remove_all(dir_);
  }

  void StartFollowerServer() {
    replica_ = std::make_unique<ReplicaNode>(follower_store_);
    net::ServerOptions options;
    options.replicate_handler = [this](const net::Request& request) {
      return replica_->HandleReplicate(request);
    };
    follower_server_ =
        std::make_unique<net::Server>(follower_enclave_, follower_store_, authority_, options);
    ASSERT_TRUE(follower_server_->Start().ok());
  }

  void StartPrimaryServer() {
    primary_server_ = std::make_unique<net::Server>(primary_enclave_, *wal_, authority_,
                                                    net::ServerOptions{});
    ASSERT_TRUE(primary_server_->Start().ok());
  }

  void StopServers() {
    if (primary_server_ != nullptr) {
      primary_server_->Stop();
    }
    if (follower_server_ != nullptr) {
      follower_server_->Stop();
    }
  }

  std::unique_ptr<WalShipper> MakeAttachedShipper() {
    ShipperOptions options;
    options.follower_port = follower_server_->port();
    options.epoch = 71;
    options.attach_attempts = 3;
    options.attach_backoff_ms = 20;
    options.reconnect_interval_ms = 20;
    auto shipper = std::make_unique<WalShipper>(*wal_, authority_,
                                                follower_enclave_.measurement(), options);
    // Sink installed BEFORE Attach: commits during the dump backlog, not drop.
    wal_->SetReplicationSink(shipper.get());
    EXPECT_TRUE(shipper->Attach().ok());
    return shipper;
  }

  sgx::Enclave primary_enclave_;
  sgx::Enclave follower_enclave_;
  sgx::AttestationAuthority authority_;
  shieldstore::PartitionedStore primary_store_;
  shieldstore::PartitionedStore follower_store_;
  std::string dir_;
  std::unique_ptr<sgx::MonotonicCounterService> counters_;
  std::unique_ptr<sgx::SealingService> sealer_;
  std::unique_ptr<shieldstore::WriteAheadStore> wal_;
  std::unique_ptr<ReplicaNode> replica_;
  std::unique_ptr<net::Server> follower_server_;
  std::unique_ptr<net::Server> primary_server_;
};

// ------------------------------------------------------------ replication

TEST_F(ReplicationTest, BootstrapShipsExistingStateThenTailsLiveWrites) {
  // State that predates the follower: only the bootstrap dump can carry it.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wal_->Set("boot-" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  StartFollowerServer();
  std::unique_ptr<WalShipper> shipper = MakeAttachedShipper();
  EXPECT_TRUE(shipper->connected());
  EXPECT_EQ(replica_->epoch(), 71u);

  // Ship-before-ack: once Set returns, the entry has already been offered to
  // the follower — no polling, no sleep.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wal_->Set("live-" + std::to_string(i), "lv" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(wal_->Delete("boot-3").ok());
  for (int i = 0; i < 20; ++i) {
    if (i == 3) {
      EXPECT_EQ(follower_store_.Get("boot-3").status().code(), Code::kNotFound);
      continue;
    }
    EXPECT_EQ(follower_store_.Get("boot-" + std::to_string(i)).value(),
              "v" + std::to_string(i));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(follower_store_.Get("live-" + std::to_string(i)).value(),
              "lv" + std::to_string(i));
  }
  EXPECT_GE(replica_->applied_entries(), 51u);  // 50 sets + 1 delete tailed
  // Watermarks advanced in ship-seq space, split across the two WAL shards.
  uint64_t total = 0;
  for (const uint64_t w : replica_->watermarks()) {
    total += w;
  }
  EXPECT_GE(total, 51u);
}

TEST_F(ReplicationTest, FollowerReconnectResumesWithoutLoss) {
  StartFollowerServer();
  std::unique_ptr<WalShipper> shipper = MakeAttachedShipper();
  ASSERT_TRUE(wal_->Set("before", "1").ok());
  EXPECT_EQ(follower_store_.Get("before").value(), "1");

  // Drop the follower mid-stream: acks must keep flowing (buffer-and-return)
  // and nothing may be lost once it comes back.
  follower_server_->Stop();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(wal_->Set("offline-" + std::to_string(i), "x").ok());
  }
  EXPECT_FALSE(shipper->connected());
  EXPECT_GT(shipper->backlog_entries(), 0u);

  // Restart the follower's server on a fresh port and re-point the shipper
  // by re-running Attach (the tools restart the whole process instead).
  StartFollowerServer();
  ShipperOptions options;
  options.follower_port = follower_server_->port();
  options.epoch = 72;  // a fresh follower process would also see a new epoch
  auto shipper2 = std::make_unique<WalShipper>(*wal_, authority_,
                                               follower_enclave_.measurement(), options);
  wal_->SetReplicationSink(shipper2.get());
  ASSERT_TRUE(shipper2->Attach().ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(follower_store_.Get("offline-" + std::to_string(i)).value(), "x");
  }
  EXPECT_EQ(follower_store_.Get("before").value(), "1");
}

TEST_F(ReplicationTest, PromotedFollowerRefusesTheStreamAndShipperDetaches) {
  StartFollowerServer();
  std::unique_ptr<WalShipper> shipper = MakeAttachedShipper();
  ASSERT_TRUE(wal_->Set("pre-promote", "1").ok());
  ASSERT_EQ(follower_store_.Get("pre-promote").value(), "1");

  replica_->Promote();
  EXPECT_EQ(replica_->role(), net::ReplicaRole::kPrimary);
  // The stale primary keeps acking its own writes (its WAL is intact) but
  // the promoted node refuses them and the shipper detaches permanently.
  ASSERT_TRUE(wal_->Set("post-promote", "2").ok());
  EXPECT_TRUE(shipper->detached());
  EXPECT_EQ(follower_store_.Get("post-promote").status().code(), Code::kNotFound);
  const uint64_t applied = replica_->applied_entries();
  ASSERT_TRUE(wal_->Set("post-promote-2", "3").ok());
  EXPECT_EQ(replica_->applied_entries(), applied);  // nothing new lands
}

// --------------------------------------------------------------- failover

TEST_F(ReplicationTest, RouterPromotesFollowerWhenPrimaryDies) {
  StartFollowerServer();
  StartPrimaryServer();
  std::unique_ptr<WalShipper> shipper = MakeAttachedShipper();

  RouterOptions options;
  options.probe_interval_ms = 0;  // recovery on demand, no probe thread
  options.op_retries = 3;
  options.retry_backoff_ms = 10;
  options.client.connect_attempts = 1;
  options.client.recv_timeout_ms = 2000;
  std::vector<RouterNode> nodes;
  nodes.push_back({"n0", primary_server_->port(), follower_server_->port()});
  Router rt(authority_, primary_enclave_.measurement(), std::move(nodes), options);
  ASSERT_TRUE(rt.Start().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rt.Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(rt.ActivePort("n0"), primary_server_->port());

  // The primary's server dies with sessions hot. The next op runs the
  // recovery sequence: reconnect fails -> promote the standby over the wire
  // -> redirect. Every previously acked write must be readable there.
  primary_server_->Stop();
  for (int i = 0; i < 40; ++i) {
    Result<std::string> got = rt.Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), "v" + std::to_string(i));
  }
  EXPECT_EQ(rt.ActivePort("n0"), follower_server_->port());
  EXPECT_EQ(replica_->role(), net::ReplicaRole::kPrimary);
  // Writes keep landing on the promoted node.
  ASSERT_TRUE(rt.Set("after-failover", "yes").ok());
  EXPECT_EQ(rt.Get("after-failover").value(), "yes");
  rt.Stop();
}

TEST_F(ReplicationTest, ProbeLoopFailsOverWithoutTraffic) {
  StartFollowerServer();
  StartPrimaryServer();
  std::unique_ptr<WalShipper> shipper = MakeAttachedShipper();
  ASSERT_TRUE(wal_->Set("probe-k", "probe-v").ok());

  RouterOptions options;
  options.probe_interval_ms = 30;
  options.probe_failures = 2;
  options.client.connect_attempts = 1;
  options.client.recv_timeout_ms = 1000;
  std::vector<RouterNode> nodes;
  nodes.push_back({"n0", primary_server_->port(), follower_server_->port()});
  Router rt(authority_, primary_enclave_.measurement(), std::move(nodes), options);
  ASSERT_TRUE(rt.Start().ok());

  primary_server_->Stop();
  // No client ops at all: the health probes alone must detect the death and
  // promote within a few intervals.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.ActivePort("n0") != follower_server_->port() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rt.ActivePort("n0"), follower_server_->port());
  EXPECT_EQ(rt.Get("probe-k").value(), "probe-v");
  rt.Stop();
}

TEST_F(ReplicationTest, NodeWithoutStandbyGoesDeadWithTypedStatus) {
  StartPrimaryServer();
  RouterOptions options;
  options.probe_interval_ms = 0;
  options.op_retries = 2;
  options.retry_backoff_ms = 5;
  options.client.connect_attempts = 1;
  std::vector<RouterNode> nodes;
  nodes.push_back({"solo", primary_server_->port(), 0});  // no follower
  Router rt(authority_, primary_enclave_.measurement(), std::move(nodes), options);
  ASSERT_TRUE(rt.Start().ok());
  ASSERT_TRUE(rt.Set("k", "v").ok());
  primary_server_->Stop();
  const Status s = rt.Set("k", "v2");
  EXPECT_EQ(s.code(), Code::kFailingOver);
  EXPECT_EQ(rt.ActivePort("solo"), 0);  // demoted to dead
  rt.Stop();
}

TEST_F(ReplicationTest, ClientReconnectRunsAFreshHandshake) {
  StartPrimaryServer();
  net::Client client(authority_, primary_enclave_.measurement());
  ASSERT_TRUE(client.Connect(primary_server_->port()).ok());
  ASSERT_TRUE(client.Set("sticky", "1").ok());

  // Restart the server: old session keys are gone, the old socket is dead.
  primary_server_->Stop();
  StartPrimaryServer();
  const uint16_t new_port = primary_server_->port();
  EXPECT_FALSE(client.Set("sticky", "2").ok());  // old session is dead
  ASSERT_TRUE(client.Reconnect(new_port).ok());  // fresh socket + attestation
  EXPECT_EQ(client.port(), new_port);
  EXPECT_EQ(client.Get("sticky").value(), "1");
  ASSERT_TRUE(client.Set("sticky", "2").ok());
  EXPECT_EQ(client.Get("sticky").value(), "2");
}

// ---------------------------------------------------------- fault tooling

TEST(NodeKillerTest, KillFreezeThawAndAlive) {
  using faultinject::NodeKiller;
  EXPECT_EQ(NodeKiller::Kill(-1).code(), Code::kInvalidArgument);
  EXPECT_EQ(NodeKiller::Kill(0).code(), Code::kInvalidArgument);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (;;) {
      ::pause();
    }
  }
  EXPECT_TRUE(NodeKiller::Alive(child));
  EXPECT_TRUE(NodeKiller::Freeze(child).ok());
  EXPECT_TRUE(NodeKiller::Thaw(child).ok());
  EXPECT_TRUE(NodeKiller::Kill(child).ok());
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_FALSE(NodeKiller::Alive(child));
  EXPECT_EQ(NodeKiller::Kill(child).code(), Code::kNotFound);  // already reaped
}

TEST(NodeKillerTest, BlackholeAcceptsButNeverSpeaks) {
  faultinject::Blackhole hole;
  ASSERT_TRUE(hole.Start(0).ok());
  ASSERT_GT(hole.port(), 0);

  // A client handshake against the blackhole must fail by timeout — the
  // network-partition shape (connection up, peer silent), not a refusal.
  sgx::Enclave enclave(FastEnclave());
  sgx::AttestationAuthority authority(AsBytes("hole-ias"));
  net::ClientOptions options;
  options.connect_attempts = 1;
  options.recv_timeout_ms = 200;
  net::Client client(authority, enclave.measurement(), true, options);
  const auto start = std::chrono::steady_clock::now();
  const Status s = client.Connect(hole.port());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kIoError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_GE(hole.accepted(), 1u);
  hole.Stop();
}

}  // namespace
}  // namespace shield
