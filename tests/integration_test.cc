// Cross-module integration and property tests:
//  * differential testing of every engine against an in-memory reference
//    model under long randomized op streams;
//  * snapshot persistence interleaved with mutation epochs;
//  * the full client -> attestation -> session -> store -> snapshot path.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "src/baseline/baseline_store.h"
#include "src/baseline/memcached_like.h"
#include "src/common/rng.h"
#include "src/eleos/eleos_kv.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/persist.h"
#include "src/shieldstore/store.h"

namespace shield {
namespace {

sgx::EnclaveConfig FastEnclave() {
  sgx::EnclaveConfig c;
  c.name = "integration-test";
  c.epc.epc_bytes = 8u << 20;
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  c.heap_reserve_bytes = 256u << 20;
  c.rng_seed = ToBytes("integration");
  return c;
}

// Runs a randomized op stream against `store` and a std::map reference,
// asserting identical observable behaviour throughout.
void DifferentialRunWith(kv::KeyValueStore& store, uint64_t seed, int steps,
                         std::map<std::string, std::string>& reference,
                         size_t key_space = 400, bool check_size = true) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < steps; ++i) {
    const std::string key = "key-" + std::to_string(rng.NextBelow(key_space));
    const double dice = rng.NextDouble();
    if (dice < 0.45) {  // set
      const std::string value(1 + rng.NextBelow(300), static_cast<char>('a' + i % 26));
      ASSERT_TRUE(store.Set(key, value).ok()) << i;
      reference[key] = value;
    } else if (dice < 0.75) {  // get
      Result<std::string> got = store.Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(got.status().code(), Code::kNotFound) << i << " " << key;
      } else {
        ASSERT_TRUE(got.ok()) << i << " " << key << ": " << got.status().ToString();
        ASSERT_EQ(*got, it->second) << i << " " << key;
      }
    } else if (dice < 0.85) {  // delete
      const Status s = store.Delete(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(s.code(), Code::kNotFound) << i;
      } else {
        ASSERT_TRUE(s.ok()) << i;
        reference.erase(it);
      }
    } else if (dice < 0.95) {  // append
      const Status s = store.Append(key, "+x");
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(s.code(), Code::kNotFound) << i;
      } else {
        ASSERT_TRUE(s.ok()) << i;
        it->second += "+x";
      }
    } else {  // exists
      Result<bool> e = store.Exists(key);
      ASSERT_TRUE(e.ok()) << i;
      ASSERT_EQ(*e, reference.count(key) == 1) << i;
    }
  }
  if (check_size) {
    EXPECT_EQ(store.Size(), reference.size());
  }
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(store.Get(key).value(), value) << key;
  }
}

void DifferentialRun(kv::KeyValueStore& store, uint64_t seed, int steps,
                     size_t key_space = 400) {
  std::map<std::string, std::string> reference;
  DifferentialRunWith(store, seed, steps, reference, key_space);
}

TEST(DifferentialTest, ShieldStoreMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  shieldstore::Options options;
  options.num_buckets = 64;  // long chains stress MAC bucketing
  shieldstore::Store store(enclave, options);
  DifferentialRun(store, 1, 6000);
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

TEST(DifferentialTest, ShieldStoreNoOptimizationsMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  shieldstore::Options options;
  options.num_buckets = 64;
  options.key_hint = false;
  options.mac_bucketing = false;
  options.extra_heap = false;
  shieldstore::Store store(enclave, options);
  DifferentialRun(store, 2, 4000);
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

TEST(DifferentialTest, ShieldStoreWithCacheMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  shieldstore::Options options;
  options.num_buckets = 256;
  options.epc_cache = true;
  options.cache_slots = 64;  // heavy collisions stress invalidation
  shieldstore::Store store(enclave, options);
  DifferentialRun(store, 3, 6000);
}

TEST(DifferentialTest, ShieldStoreDuringSnapshotEpochMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  shieldstore::Options options;
  options.num_buckets = 128;
  shieldstore::Store store(enclave, options);
  std::map<std::string, std::string> reference;
  DifferentialRunWith(store, 4, 1500, reference);
  ASSERT_TRUE(store.BeginSnapshotEpoch().ok());
  // The whole mix keeps behaving identically while writes go to the
  // temporary table... (Size() is documented as approximate during an epoch,
  // so the exact-size check waits for the merge.)
  DifferentialRunWith(store, 5, 1500, reference, 400, /*check_size=*/false);
  ASSERT_TRUE(store.EndSnapshotEpoch().ok());
  // ...and after the merge.
  DifferentialRunWith(store, 6, 1500, reference);
  ASSERT_TRUE(store.VerifyFullIntegrity().ok());
}

TEST(DifferentialTest, BaselineStoresMatchReference) {
  baseline::BaselineStore nosgx(nullptr, baseline::Placement::kNoSgx, 64);
  DifferentialRun(nosgx, 7, 4000);
  sgx::Enclave enclave(FastEnclave());
  baseline::BaselineStore naive(&enclave, baseline::Placement::kEnclaveNaive, 64);
  DifferentialRun(naive, 8, 4000);
}

TEST(DifferentialTest, MemcachedLikeMatchesReference) {
  baseline::MemcachedOptions options;
  options.graphene = false;
  options.start_maintainer = true;  // racing the maintainer
  options.maintenance_interval_us = 100;
  baseline::MemcachedLikeStore store(nullptr, options);
  DifferentialRun(store, 9, 4000);
}

TEST(DifferentialTest, EleosStoreMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  eleos::SuvmConfig suvm;
  suvm.cache_bytes = 8 * 4096;  // constant eviction through page crypto
  suvm.pool_bytes = 32u << 20;
  eleos::EleosStore store(enclave, suvm, 64);
  DifferentialRun(store, 10, 4000);
}

TEST(DifferentialTest, PartitionedShieldStoreMatchesReference) {
  sgx::Enclave enclave(FastEnclave());
  shieldstore::Options options;
  options.num_buckets = 256;
  shieldstore::PartitionedStore store(enclave, options, 4);
  DifferentialRun(store, 11, 6000);
}

// ------------------------------------------------------- end-to-end stack

TEST(FullStackTest, NetworkedStoreWithSnapshotAndRecovery) {
  const std::string dir = ::testing::TempDir() + "/fullstack";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sgx::Enclave enclave(FastEnclave());
  sgx::AttestationAuthority authority(AsBytes("integration-ias"));
  sgx::SealingService sealer(AsBytes("fuse"), enclave.measurement());
  sgx::MonotonicCounterService::Options counter_options;
  counter_options.backing_file = dir + "/counters.bin";
  counter_options.increment_cost_cycles = 0;
  sgx::MonotonicCounterService counters(counter_options);

  shieldstore::Options options;
  options.num_buckets = 512;

  {
    shieldstore::Store store(enclave, options);
    net::Server server(enclave, store, authority, {});
    ASSERT_TRUE(server.Start().ok());
    {
      net::Client client(authority, enclave.measurement());
      ASSERT_TRUE(client.Connect(server.port()).ok());
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(client.Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
      }
      // Snapshot while the server is still up (single-owner store: the test
      // thread owns mutations now; the client is idle).
      shieldstore::Snapshotter snap(store, sealer, counters, {dir, /*optimized=*/true});
      ASSERT_TRUE(snap.StartSnapshot().ok());
      ASSERT_TRUE(client.Set("during-snapshot", "42").ok());  // into the temp table
      ASSERT_TRUE(snap.FinishSnapshot(/*wait=*/true).ok());
      ASSERT_EQ(client.Get("during-snapshot").value(), "42");
    }
    server.Stop();
  }

  // "Reboot": recover from disk, serve again, verify pre-snapshot state.
  auto recovered = shieldstore::Snapshotter::Recover(enclave, options, sealer, counters,
                                                     {dir, true});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  net::Server server(enclave, **recovered, authority, {});
  ASSERT_TRUE(server.Start().ok());
  net::Client client(authority, enclave.measurement());
  ASSERT_TRUE(client.Connect(server.port()).ok());
  EXPECT_EQ(client.Get("k42").value(), "v42");
  EXPECT_EQ(client.Get("during-snapshot").status().code(), Code::kNotFound);
  server.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace shield
