# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/shieldstore_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/eleos_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/oplog_test[1]_include.cmake")
include("/root/repo/build/tests/faultinject_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
