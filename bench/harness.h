// Shared benchmark harness: scaled configuration, store preloading,
// time-boxed single/multi-threaded workload runners, and a fixed-width
// table printer whose rows mirror the paper's figures.
//
// Scaling: the simulation shrinks the paper's geometry so every experiment
// crosses the same regimes (within EPC / beyond EPC / beyond Eleos pools) in
// seconds instead of hours. The default simulated EPC is 24 MB (paper: ~90 MB
// effective) and key counts shrink proportionally. Set SHIELD_BENCH_SCALE to
// grow everything linearly (e.g. SHIELD_BENCH_SCALE=4 for a longer, closer-
// to-paper run).
#ifndef SHIELDSTORE_BENCH_HARNESS_H_
#define SHIELDSTORE_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/interface.h"
#include "src/obs/metrics.h"
#include "src/sgx/enclave.h"
#include "src/workload/generator.h"

namespace shield::bench {

namespace internal {
// Accumulates every completed Table into the process-wide machine-readable
// report, written at exit as BENCH_<name>.json (<name> = the binary's name
// minus its "bench_" prefix; directory from SHIELD_BENCH_JSON_DIR, default
// cwd). Cells that parse as numbers are emitted as JSON numbers.
void AppendJsonTable(const std::string& title, const std::vector<std::string>& columns,
                     const std::vector<std::vector<std::string>>& rows);
}  // namespace internal

inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("SHIELD_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

// Default simulated-EPC size for benches (the paper's 128 MB reserved /
// ~90 MB effective, scaled).
inline constexpr size_t kBenchEpcBytes = 24u << 20;

inline sgx::EnclaveConfig BenchEnclave(size_t epc_bytes = kBenchEpcBytes,
                                       size_t reserve = size_t{6} << 30) {
  sgx::EnclaveConfig c;
  c.name = "shieldstore-bench";
  c.epc.epc_bytes = epc_bytes;
  c.heap_reserve_bytes = reserve;
  return c;
}

// ---------------------------------------------------------------- printing

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}
  ~Table() {
    if (!rows_.empty()) {
      internal::AppendJsonTable(title_, columns_, rows_);
    }
  }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  void Header(const std::vector<std::string>& columns) {
    columns_ = columns;
    std::printf("\n== %s ==\n", title_.c_str());
    for (const std::string& c : columns_) {
      std::printf("%-18s", c.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%-18s", "---------------");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const std::string& c : cells) {
      std::printf("%-18s", c.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
    rows_.push_back(cells);
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, const char* fmt = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// ----------------------------------------------------------------- running

struct RunResult {
  uint64_t ops = 0;
  double seconds = 0;
  // Per-op latency distribution in nanoseconds (log2-bucketed; empty when
  // the obs layer is compiled to no-ops and the cycle counter reads 0).
  obs::HistogramData latency;
  double Kops() const { return seconds > 0 ? static_cast<double>(ops) / seconds / 1000.0 : 0; }
  double LatencyUs(double q) const { return latency.Quantile(q) / 1e3; }
};

// Preloads keys [0, num_keys) with version-0 values. Returns false if the
// store refuses (capacity) — callers report n/a for that cell.
bool Preload(kv::KeyValueStore& store, size_t num_keys, const workload::DataSet& ds);

// Executes one op against a store; returns false on hard failure.
bool ExecuteOp(kv::KeyValueStore& store, const workload::Op& op, const workload::DataSet& ds,
               uint64_t* version_counter);

// Time-boxed single-threaded run.
RunResult RunWorkload(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                      const workload::DataSet& ds, size_t num_keys, double seconds,
                      uint64_t seed = 42);

// SIMULATED MULTICORE. This host may have a single CPU, so the multi-thread
// runners below execute the simulated workers SEQUENTIALLY, each for the
// full measurement window, and report the aggregate ops/window. For the
// paper's share-nothing partitioned threads this accounting is exact (each
// core would have run its partition independently); the two shared
// serialization points — the EPC demand-paging path and memcached's global
// cache lock — are modelled by a virtual-contention multiplier set at store
// construction (each request observes ~n x the resource's service time when
// n simulated workers saturate it). See DESIGN.md "Substitutions".

// Multi-threaded run against a thread-safe shared store (the memcached
// model): the store's own virtual_contention models the lock.
RunResult RunWorkloadShared(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                            const workload::DataSet& ds, size_t num_keys, size_t threads,
                            double seconds);

// The paper's partition-owned-thread model (§5.3): simulated thread t
// generates the full op stream but executes only the ops whose keys route to
// partition t — no locks, no cross-partition sharing.
template <typename PartitionedT>
RunResult RunWorkloadPartitioned(PartitionedT& store, const workload::WorkloadConfig& config,
                                 const workload::DataSet& ds, size_t num_keys, double seconds) {
  const size_t threads = store.num_partitions();
  RunResult total;
  for (size_t t = 0; t < threads; ++t) {
    workload::WorkloadGenerator gen(config, num_keys, 1000 + t);
    uint64_t version = 1;
    uint64_t ops = 0;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(seconds));
    while (std::chrono::steady_clock::now() < deadline) {
      for (int batch = 0; batch < 64; ++batch) {
        const workload::Op op = gen.Next();
        const std::string key = workload::KeyAt(op.key_index, ds.key_bytes);
        if (store.PartitionOf(key) != t) {
          continue;  // another partition's simulated core serves this op
        }
        ExecuteOp(store.partition(t), op, ds, &version);
        ++ops;
      }
    }
    total.ops += ops;
    total.seconds = std::max(
        total.seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  }
  return total;
}

}  // namespace shield::bench

#endif  // SHIELDSTORE_BENCH_HARNESS_H_
