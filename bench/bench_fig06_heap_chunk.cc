// Figure 6: the extra heap allocator (§5.1) — OCALL count and throughput as
// the per-OCALL allocation chunk grows from 1 MB to 32 MB.
//
// Paper shape: OCALLs drop drastically with chunk size; throughput rises a
// few percent and saturates (the paper settles on 16 MB chunks).
#include "bench/harness.h"
#include "src/shieldstore/store.h"

namespace shield::bench {
namespace {

void Run() {
  const workload::DataSet ds = workload::SmallDataSet();
  const size_t preload_keys = Scaled(50'000);
  const size_t insert_ops = Scaled(150'000);

  Table table("Figure 6: extra-heap chunk size vs OCALLs and throughput (insert-heavy, small)");
  table.Header({"chunk(MB)", "OCALLs", "Kop/s"});

  for (size_t mb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    sgx::Enclave enclave(BenchEnclave());
    shieldstore::Options options;
    options.num_buckets = preload_keys + insert_ops;
    options.extra_heap = true;
    options.heap_chunk_bytes = mb << 20;
    shieldstore::Store store(enclave, options);
    Preload(store, preload_keys, ds);
    // Measurement phase: fresh-key inserts, the operation that exercises the
    // allocator (a set to an existing key reseals in place).
    const uint64_t ocalls_before = enclave.boundary().ocall_count();
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < insert_ops; ++i) {
      store.Set(workload::KeyAt(preload_keys + i, ds.key_bytes),
                workload::ValueFor(preload_keys + i, 0, ds.value_bytes));
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const uint64_t ocalls = enclave.boundary().ocall_count() - ocalls_before;
    table.Row({std::to_string(mb), std::to_string(ocalls),
               Fmt(static_cast<double>(insert_ops) / seconds / 1000.0)});
  }
  std::printf("# paper: OCALLs collapse as the chunk grows; throughput gains ~5-10%%\n"
              "# and saturates around the 16 MB default.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
