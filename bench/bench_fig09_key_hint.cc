// Figure 9: number of key decryptions needed to locate entries, with and
// without the 1-byte key hint (§5.4), for a low and a high bucket count.
//
// Paper: 10M keys over 1M buckets (chains ~10) and 8M buckets (~1.25);
// scaled here to 200k keys over 20k and 160k buckets. Shape: hints cut
// decryptions by ~chain-length; the gap shrinks when chains are short.
#include "bench/harness.h"
#include "src/shieldstore/store.h"

namespace shield::bench {
namespace {

void Run() {
  const workload::DataSet ds = workload::SmallDataSet();
  const size_t num_keys = Scaled(200'000);
  const size_t ops = Scaled(100'000);

  Table table("Figure 9: key decryptions to find matching entries (100k uniform gets)");
  table.Header({"buckets", "hint", "decrypts", "per get"});

  for (size_t buckets : {num_keys / 10, num_keys * 8 / 10}) {
    for (bool hint : {false, true}) {
      sgx::Enclave enclave(BenchEnclave());
      shieldstore::Options options;
      options.num_buckets = buckets;
      options.key_hint = hint;
      shieldstore::Store store(enclave, options);
      Preload(store, num_keys, ds);
      const uint64_t before = store.stats().decryptions;
      workload::WorkloadGenerator gen(workload::RD100_U(), num_keys, 7);
      uint64_t version = 1;
      for (size_t i = 0; i < ops; ++i) {
        ExecuteOp(store, gen.Next(), ds, &version);
      }
      const uint64_t decrypts = store.stats().decryptions - before;
      table.Row({std::to_string(buckets), hint ? "yes" : "no", std::to_string(decrypts),
                 Fmt(static_cast<double>(decrypts) / static_cast<double>(ops), "%.2f")});
    }
  }
  std::printf("# paper: hints cut decryptions by roughly the chain length (~10x at\n"
              "# 1M buckets); the reduction shrinks at 8M buckets where chains are ~1.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
