// Microbenchmarks of the crypto substrate: these are the primitive costs
// every figure decomposes into — per-entry AES-CTR + CMAC (ShieldStore's op
// cost), the interleaved batch CMAC used by scrub verification, and the
// keyed hashes on the lookup path.
//
// CTR and CMAC run at BOTH backends (table reference and AES-NI when the
// CPU has it) in one invocation and the per-size GB/s plus hardware/table
// speedup ratios land in BENCH_crypto.json. Exit code gates the tentpole
// target: >= 2x on CTR and CMAC at the largest size when AES-NI is
// available (always 0 when it is not, so table-only machines still run the
// bench for trajectory numbers).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/crypto/aes.h"
#include "src/crypto/cmac.h"
#include "src/crypto/cpu.h"
#include "src/crypto/ctr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/siphash.h"

namespace shield::crypto {
namespace {

const AesKey kKey = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};

// Repeats fn(bytes-per-call) until `seconds` elapse; returns GB/s.
template <typename Fn>
double Throughput(double seconds, size_t bytes_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  // Warm-up pass so first-touch and schedule-cache effects don't skew short
  // smoke windows.
  fn();
  uint64_t calls = 0;
  const auto start = clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(seconds));
  auto now = start;
  do {
    for (int i = 0; i < 8; ++i) {
      fn();
    }
    calls += 8;
    now = clock::now();
  } while (now < deadline);
  const double elapsed = std::chrono::duration<double>(now - start).count();
  const double bytes = static_cast<double>(calls) * static_cast<double>(bytes_per_call);
  return elapsed > 0 ? bytes / elapsed / 1e9 : 0;
}

double BenchCtr(AesBackend backend, size_t size, double seconds) {
  Bytes data(size, 0xAB);
  Aes128 aes(ByteSpan(kKey.data(), kKey.size()), backend);
  uint8_t ctr[16] = {};
  return Throughput(seconds, size, [&] { AesCtrTransform(aes, ctr, 32, data, data); });
}

double BenchCmac(AesBackend backend, size_t size, double seconds) {
  Bytes data(size, 0xCD);
  CmacKey key(ByteSpan(kKey.data(), kKey.size()), backend);
  volatile uint8_t sink = 0;
  const double gbps = Throughput(seconds, size, [&] {
    Cmac cmac(key);
    cmac.Update(data);
    sink = cmac.Finalize()[0];
  });
  (void)sink;
  return gbps;
}

// The scrub-path shape: kCmacBatchLanes independent messages signed with
// interleaved lanes off one shared key schedule.
double BenchCmacBatch(AesBackend backend, size_t size, double seconds) {
  Bytes data(size, 0xEF);
  CmacKey key(ByteSpan(kKey.data(), kKey.size()), backend);
  CmacMessage msgs[kCmacBatchLanes];
  for (size_t i = 0; i < kCmacBatchLanes; ++i) {
    msgs[i].Append(ByteSpan(data.data(), data.size()));
  }
  Mac tags[kCmacBatchLanes];
  volatile uint8_t sink = 0;
  const double gbps = Throughput(seconds, size * kCmacBatchLanes, [&] {
    CmacSignBatch(key, std::span<const CmacMessage>(msgs, kCmacBatchLanes), tags);
    sink = tags[0][0];
  });
  (void)sink;
  return gbps;
}

std::string Fmt(double v, const char* spec = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

int Run(double seconds, const std::string& out_path) {
  const bool have_hw = AesNiAvailable();
  std::vector<AesBackend> backends = {AesBackend::kTable};
  if (have_hw) {
    backends.push_back(AesBackend::kAesNi);
  }
  const std::vector<size_t> sizes = {64, 256, 1024, 4096};

  std::printf("# micro crypto: active backend %s, aes-ni %s\n",
              AesBackendName(ActiveAesBackend()), have_hw ? "available" : "unavailable");
  std::printf("%-12s %-10s %8s %12s\n", "op", "backend", "size", "GB/s");

  std::string json = "{\n  \"bench\": \"crypto\",\n  \"aesni_available\": ";
  json += have_hw ? "true" : "false";
  json += ",\n  \"active_backend\": \"";
  json += AesBackendName(ActiveAesBackend());
  json += "\",\n  \"results\": [\n";

  // speedups[op][size] -> hw/table ratio, filled as both backends report.
  double ctr_speedup = 0, cmac_speedup = 0, batch_speedup = 0;
  double table_ctr = 0, table_cmac = 0, table_batch = 0;
  bool first = true;
  for (AesBackend backend : backends) {
    for (const char* op : {"ctr", "cmac", "cmac_batch"}) {
      for (size_t size : sizes) {
        double gbps = 0;
        if (std::strcmp(op, "ctr") == 0) {
          gbps = BenchCtr(backend, size, seconds);
        } else if (std::strcmp(op, "cmac") == 0) {
          gbps = BenchCmac(backend, size, seconds);
        } else {
          gbps = BenchCmacBatch(backend, size, seconds);
        }
        std::printf("%-12s %-10s %8zu %12s\n", op, AesBackendName(backend), size,
                    Fmt(gbps).c_str());
        json += std::string(first ? "" : ",\n") + "    {\"op\": \"" + op + "\", \"backend\": \"" +
                AesBackendName(backend) + "\", \"size\": " + std::to_string(size) +
                ", \"gbps\": " + Fmt(gbps) + "}";
        first = false;
        if (size == sizes.back()) {
          if (backend == AesBackend::kTable) {
            (std::strcmp(op, "ctr") == 0      ? table_ctr
             : std::strcmp(op, "cmac") == 0   ? table_cmac
                                              : table_batch) = gbps;
          } else if (table_ctr > 0 || table_cmac > 0 || table_batch > 0) {
            if (std::strcmp(op, "ctr") == 0 && table_ctr > 0) {
              ctr_speedup = gbps / table_ctr;
            } else if (std::strcmp(op, "cmac") == 0 && table_cmac > 0) {
              cmac_speedup = gbps / table_cmac;
            } else if (std::strcmp(op, "cmac_batch") == 0 && table_batch > 0) {
              batch_speedup = gbps / table_batch;
            }
          }
        }
      }
    }
  }

  // Single-run reference numbers for the non-AES primitives on the lookup
  // path (no backend dimension).
  {
    Bytes data(4096, 0x5A);
    volatile uint8_t sink = 0;
    const double sha = Throughput(seconds, data.size(), [&] { sink = Sha256Hash(data)[0]; });
    SipHashKey sip_key{};
    sip_key[0] = 7;
    Bytes sip_data(64, 0x11);
    volatile uint64_t sink64 = 0;
    const double sip =
        Throughput(seconds, sip_data.size(), [&] { sink64 = SipHash24(sip_key, sip_data); });
    (void)sink;
    (void)sink64;
    std::printf("%-12s %-10s %8d %12s\n", "sha256", "-", 4096, Fmt(sha).c_str());
    std::printf("%-12s %-10s %8d %12s\n", "siphash", "-", 64, Fmt(sip).c_str());
    json += ",\n    {\"op\": \"sha256\", \"backend\": \"-\", \"size\": 4096, \"gbps\": " +
            Fmt(sha) + "}";
    json += ",\n    {\"op\": \"siphash\", \"backend\": \"-\", \"size\": 64, \"gbps\": " +
            Fmt(sip) + "}";
  }

  json += "\n  ],\n  \"ctr_speedup\": " + Fmt(ctr_speedup, "%.2f") +
          ",\n  \"cmac_speedup\": " + Fmt(cmac_speedup, "%.2f") +
          ",\n  \"cmac_batch_speedup\": " + Fmt(batch_speedup, "%.2f") + "\n}\n";
  std::ofstream(out_path) << json;

  if (!have_hw) {
    std::printf("# wrote %s; aes-ni unavailable, speedup gate skipped\n", out_path.c_str());
    return 0;
  }
  const bool pass = ctr_speedup >= 2.0 && cmac_speedup >= 2.0;
  std::printf("# wrote %s; target: aes-ni >= 2x table on ctr+cmac @4096 "
              "(got ctr %.2fx, cmac %.2fx, batch %.2fx) -> %s\n",
              out_path.c_str(), ctr_speedup, cmac_speedup, batch_speedup,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace shield::crypto

int main(int argc, char** argv) {
  double seconds = 0.25;
  std::string out = "BENCH_crypto.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      seconds = 0.04;
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_micro_crypto [--smoke] [--seconds S] [--out PATH]\n");
      return 2;
    }
  }
  return shield::crypto::Run(seconds, out);
}
