// Microbenchmarks of the crypto substrate (google-benchmark): these are the
// primitive costs every figure decomposes into — per-entry AES-CTR + CMAC
// (ShieldStore's op cost), page-sized crypto (the simulated EWB/ELDU and
// Eleos' per-fault cost), and the keyed hashes on the lookup path.
#include <benchmark/benchmark.h>

#include "src/crypto/aes.h"
#include "src/crypto/cmac.h"
#include "src/crypto/ctr.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha256.h"
#include "src/crypto/siphash.h"
#include "src/crypto/x25519.h"

namespace shield::crypto {
namespace {

const AesKey kKey = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};

void BM_AesCtr(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xAB);
  Aes128 aes(ByteSpan(kKey.data(), kKey.size()));
  uint8_t ctr[16] = {};
  for (auto _ : state) {
    AesCtrTransform(aes, ctr, 32, data, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_AesCtr)->Arg(16)->Arg(128)->Arg(512)->Arg(4096);

void BM_Cmac(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xCD);
  for (auto _ : state) {
    Mac mac = CmacSign(ByteSpan(kKey.data(), kKey.size()), data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Cmac)->Arg(16)->Arg(128)->Arg(512)->Arg(4096);

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0x5A);
  for (auto _ : state) {
    Sha256Digest digest = Sha256Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_SipHash(benchmark::State& state) {
  SipHashKey key{};
  key[0] = 7;
  Bytes data(static_cast<size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SipHash24(key, data));
  }
}
BENCHMARK(BM_SipHash)->Arg(16)->Arg(64);

void BM_DrbgFill(benchmark::State& state) {
  Drbg drbg(AsBytes("bench"));
  Bytes out(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    drbg.Fill(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_DrbgFill)->Arg(16)->Arg(4096);

void BM_X25519(benchmark::State& state) {
  X25519Key scalar{};
  scalar[0] = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(X25519BasePoint(scalar));
  }
}
BENCHMARK(BM_X25519);

}  // namespace
}  // namespace shield::crypto

BENCHMARK_MAIN();
