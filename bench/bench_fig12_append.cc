// Figure 12: server-side append operations (§3.2's richer semantics) —
// read/append mixes over zipfian and uniform distributions.
//
// Paper shape: ShieldStore 1.7-16x over Baseline; the gap narrows on the
// zipfian mixes because repeated appends balloon the hot values and their
// en/decryption cost dominates both systems.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  // Like the paper's append eval, the data set must exceed the EPC so the
  // baseline pays demand paging: 1.2M small entries ~= 105 MB vs 24 MB EPC.
  const size_t num_keys = Scaled(1'200'000);
  const size_t shield_buckets = Scaled(800'000);
  const workload::DataSet ds = workload::SmallDataSet();
  const std::vector<workload::WorkloadConfig> mixes = {
      workload::AP95_Z99(), workload::AP95_Z50(), workload::AP95_U(), workload::AP50_U()};

  Table table("Figure 12: append mixes (Kop/s), small data set, 1 thread");
  table.Header({"mix", "Mc+graphene", "Baseline", "ShieldBase", "ShieldOpt"});

  for (const workload::WorkloadConfig& config : mixes) {
    std::vector<std::string> row = {config.name};
    for (int s = 0; s < 4; ++s) {
      std::unique_ptr<System> system;
      switch (s) {  // fresh stores per mix: appends mutate value sizes
        case 0:
          system = MakeMemcachedSystem(true, num_keys, 1);
          break;
        case 1:
          system = MakeBaselineSystem(true, num_keys, 1);
          break;
        case 2:
          system = MakeShieldSystem("ShieldBase", ShieldBaseOptions(shield_buckets), 1);
          break;
        case 3:
          system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(shield_buckets), 1);
          break;
      }
      Preload(system->store(), num_keys, ds);
      row.push_back(Fmt(system->Run(config, ds, num_keys, 0.3).Kops()));
    }
    table.Row(row);
  }
  std::printf("# paper: ShieldStore 1.7-16x over Baseline; smaller gaps on zipfian mixes\n"
              "# where hot values grow large under repeated appends.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
