// Figure 3: the naive SGX key-value store (whole hash table in enclave
// memory) against the same store without SGX, as the database grows.
//
// Paper shape: near-parity below the EPC limit (secure within ~60% of
// insecure), collapse once the working set exceeds it — 134x slower at 4 GB.
// Simulated EPC: 24 MB, 512 B values => the cliff lands around 24-32 MB.
#include "bench/harness.h"
#include "src/baseline/baseline_store.h"

namespace shield::bench {
namespace {

void Run() {
  const workload::DataSet ds = workload::LargeDataSet();  // 16 B / 512 B
  const workload::WorkloadConfig config = workload::RD50_U();
  // Per-key footprint: node header + key + value + allocator slack.
  const size_t bytes_per_key = 16 + ds.key_bytes + ds.value_bytes + 40;

  Table table("Figure 3: naive baseline w/ and w/o SGX (Kop/s), EPC = 24 MB");
  table.Header({"DB size(MB)", "NoSGX", "Baseline(SGX)", "slowdown"});

  for (size_t mb : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u}) {
    const size_t wss = Scaled(mb << 20);
    const size_t num_keys = wss / bytes_per_key;
    const size_t num_buckets = std::max<size_t>(num_keys, 1);

    baseline::BaselineStore insecure(nullptr, baseline::Placement::kNoSgx, num_buckets);
    Preload(insecure, num_keys, ds);
    const RunResult r_insecure = RunWorkload(insecure, config, ds, num_keys, 0.3);

    sgx::Enclave enclave(BenchEnclave());
    baseline::BaselineStore secure(&enclave, baseline::Placement::kEnclaveNaive, num_buckets);
    Preload(secure, num_keys, ds);
    const RunResult r_secure = RunWorkload(secure, config, ds, num_keys, 0.4);

    table.Row({std::to_string(mb), Fmt(r_insecure.Kops()), Fmt(r_secure.Kops()),
               Fmt(r_insecure.Kops() / std::max(r_secure.Kops(), 1e-9), "%.1fx")});
  }
  std::printf("# paper: parity below EPC, >100x slowdown at the largest sets.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
