// Figure 15: the number of in-enclave MAC hashes (§4.3's trade-off).
//
// More MAC hashes mean smaller bucket sets (cheaper verification per
// operation) — until the hash array itself no longer fits in EPC and begins
// to page. Paper: with 8M buckets, throughput rises from 1M to 4M hashes and
// collapses at 8M (128 MB of hashes vs ~90 MB EPC). Scaled: 128k buckets,
// 16k-128k hashes against a 1.75 MB EPC, so the 128k point (2 MB) spills.
#include "bench/systems.h"
#include "src/shieldstore/store.h"

namespace shield::bench {
namespace {

void Run() {
  const size_t num_buckets = Scaled(128'000);
  const size_t num_keys = Scaled(100'000);
  const size_t epc_bytes = 1792u << 10;  // 1.75 MB simulated EPC for this sweep
  const workload::WorkloadConfig config = workload::RD50_Z();

  Table table("Figure 15: MAC-hash count trade-off (Kop/s), EPC = 1.75 MB, 128k buckets");
  table.Header({"MAC hashes", "hash bytes", "small", "medium", "large"});

  for (size_t hashes : {16'000u, 32'000u, 64'000u, 128'000u}) {
    std::vector<std::string> row = {std::to_string(hashes / 1000) + "k",
                                    std::to_string(hashes * 16 / 1024) + "KB"};
    for (const workload::DataSet& ds :
         {workload::SmallDataSet(), workload::MediumDataSet(), workload::LargeDataSet()}) {
      sgx::Enclave enclave(BenchEnclave(epc_bytes));
      shieldstore::Options options;
      options.num_buckets = num_buckets;
      options.num_mac_hashes = Scaled(hashes);
      shieldstore::Store store(enclave, options);
      Preload(store, num_keys, ds);
      row.push_back(Fmt(RunWorkload(store, config, ds, num_keys, 0.4).Kops()));
    }
    table.Row(row);
  }
  std::printf("# paper: throughput rises with more MAC hashes (smaller bucket sets), then\n"
              "# collapses at the count whose array exceeds the EPC.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
