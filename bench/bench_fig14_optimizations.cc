// Figure 14: cumulative effect of the §5 optimizations — ShieldBase, then
// +key hint (§5.4), +extra heap allocator (§5.1), +MAC bucketing (§5.2) —
// across four table geometries whose average chain lengths are 1.25, 5, 10
// and 40 (the paper's 1M/8M buckets x 10M/40M entries, scaled).
//
// Paper shape: little headroom at chain length 1.25 (the heap allocator
// still helps RD50's sets); gains grow with chain length.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  struct Geometry {
    size_t buckets;
    size_t entries;
  };
  const Geometry geometries[] = {
      {Scaled(64'000), Scaled(80'000)},   // chain ~1.25  (8M buckets, 10M entries)
      {Scaled(64'000), Scaled(320'000)},  // chain ~5     (8M buckets, 40M entries)
      {Scaled(8'000), Scaled(80'000)},    // chain ~10    (1M buckets, 10M entries)
      {Scaled(8'000), Scaled(320'000)},   // chain ~40    (1M buckets, 40M entries)
  };
  const workload::DataSet ds = workload::LargeDataSet();
  const std::vector<workload::WorkloadConfig> workloads = {workload::RD50_Z(),
                                                           workload::RD95_Z(),
                                                           workload::RD100_Z()};

  Table table("Figure 14: cumulative optimizations (Kop/s), large data set");
  table.Header({"geometry", "workload", "ShieldBase", "+KeyOPT", "+HeapAlloc", "+MACBucket"});

  for (const Geometry& g : geometries) {
    // Four cumulative configurations.
    shieldstore::Options configs[4];
    configs[0] = ShieldBaseOptions(g.buckets);
    configs[1] = configs[0];
    configs[1].key_hint = true;
    configs[2] = configs[1];
    configs[2].extra_heap = true;
    configs[3] = configs[2];
    configs[3].mac_bucketing = true;

    // One store per configuration, preloaded once, reused across workloads.
    std::vector<std::unique_ptr<System>> systems;
    for (const auto& options : configs) {
      systems.push_back(MakeShieldSystem("variant", options, 1));
      Preload(systems.back()->store(), g.entries, ds);
    }
    const std::string label =
        std::to_string(g.buckets / 1000) + "k-bkt/" + std::to_string(g.entries / 1000) + "k-ent";
    for (const workload::WorkloadConfig& config : workloads) {
      std::vector<std::string> row = {label, config.name};
      for (auto& system : systems) {
        row.push_back(Fmt(system->Run(config, ds, g.entries, 0.25).Kops()));
      }
      table.Row(row);
    }
  }
  std::printf("# paper: flat at chain ~1.25 except +HeapAlloc on RD50; the hint and MAC\n"
              "# bucketing gains grow as chains lengthen.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
