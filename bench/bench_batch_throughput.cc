// Batched operation pipeline: networked throughput vs batch depth.
//
// One real server (encrypted sessions, durable-ack WAL with a group-commit
// window — the configuration where every singleton mutation pays a window
// wait and a boundary crossing), loaded by C connections issuing write-heavy
// traffic at kBatch depths 1/4/16/64. Depth 1 is the unbatched baseline:
// each op is its own frame, its own session Seal/Open, its own enclave
// submission, and its own group-commit ack. At depth N all of that amortizes
// N ways — one frame, one crossing, one AwaitDurable per touched shard.
//
// Emits BENCH_batch.json for the acceptance gate: depth-16 throughput >= 2x
// depth 1 with group commit enabled.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "bench/netload.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield::bench {
namespace {

int Run(double seconds, const std::string& out_path) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("shield_batch_bench_" + std::to_string(getpid())))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sgx::Enclave enclave(BenchEnclave());
  const sgx::AttestationAuthority authority(AsBytes("batch-bench"));
  const sgx::SealingService sealer(AsBytes("batch-bench"), enclave.measurement());
  sgx::MonotonicCounterService::Options counter_opts;
  counter_opts.backing_file = dir + "/counters.bin";
  counter_opts.increment_cost_cycles = 0;
  sgx::MonotonicCounterService counters(counter_opts);

  shieldstore::Options options;
  options.num_buckets = 1 << 14;
  shieldstore::PartitionedStore store(enclave, options, 4);

  // Durable acks: the discipline where batching pays off most — every
  // singleton Set waits out a group-commit window; a batch waits once per
  // touched shard.
  shieldstore::OpLogOptions log_opts;
  log_opts.path = dir + "/wal.log";
  log_opts.group_commit_window_us = 100;
  log_opts.group_commit_ops = 64;
  shieldstore::WriteAheadStore wal(store, sealer, counters, log_opts);
  if (!wal.Open().ok()) {
    std::fprintf(stderr, "wal open failed\n");
    std::filesystem::remove_all(dir);
    return 2;
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  net::Server server(enclave, wal, authority, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::filesystem::remove_all(dir);
    return 2;
  }

  const workload::DataSet ds = workload::MediumDataSet();
  const size_t num_keys = Scaled(4'000);

  NetLoadOptions load;
  load.connections = 4;
  load.seconds = seconds;

  Table table("Batched pipeline: networked write-heavy Kop/s vs kBatch depth "
              "(durable group-commit acks)");
  table.Header({"depth", "Kop/s", "speedup", "crossings saved"});

  std::string json = "{\n  \"bench\": \"batch_throughput\",\n"
                     "  \"wal\": \"group_commit_window_us=100, durable acks\",\n"
                     "  \"connections\": " + std::to_string(load.connections) +
                     ",\n  \"results\": [\n";
  double depth1_kops = 0;
  double depth16_kops = 0;
  bool first = true;
  for (size_t depth : {1, 4, 16, 64}) {
    const uint64_t saved_before = server.crossings_saved();
    const double kops =
        RunBatchedNetworkLoad(server.port(), authority, enclave.measurement(), ds, num_keys,
                              depth, load);
    const uint64_t saved = server.crossings_saved() - saved_before;
    if (depth == 1) {
      depth1_kops = kops;
    }
    if (depth == 16) {
      depth16_kops = kops;
    }
    const double speedup = depth1_kops > 0 ? kops / depth1_kops : 0;
    table.Row({std::to_string(depth), Fmt(kops), Fmt(speedup, "%.2fx"),
               std::to_string(saved)});
    json += std::string(first ? "" : ",\n") + "    {\"depth\": " + std::to_string(depth) +
            ", \"kops\": " + Fmt(kops, "%.2f") +
            ", \"crossings_saved\": " + std::to_string(saved) + "}";
    first = false;
  }
  const double speedup_at_16 = depth1_kops > 0 ? depth16_kops / depth1_kops : 0;
  json += "\n  ],\n  \"speedup_at_depth_16\": " + Fmt(speedup_at_16, "%.2f") + "\n}\n";
  std::ofstream(out_path) << json;
  std::printf("# wrote %s; target: depth 16 >= 2x depth 1 (got %.2fx)\n", out_path.c_str(),
              speedup_at_16);

  server.Stop();
  std::filesystem::remove_all(dir);
  return speedup_at_16 >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace shield::bench

int main(int argc, char** argv) {
  double seconds = 0.4;
  std::string out = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      seconds = 0.1;
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_batch_throughput [--smoke] [--seconds S] [--out PATH]\n");
      return 2;
    }
  }
  return shield::bench::Run(seconds, out);
}
