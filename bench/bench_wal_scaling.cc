// WAL scaling: sharded per-partition operation logs vs the PR 2 single
// global log, write-only load, equal durability discipline (legacy
// auto-commit, fsync every group_commit_ops records).
//
// SIMULATED MULTICORE (see harness.h): the T simulated writers run
// SEQUENTIALLY, each for the full window, writing only the keys its
// partition owns. The single-log baseline models T writers serializing on
// one log mutex with virtual_contention = T (every op observes ~T x the
// lock-held service time, fsync included); the sharded mode maps each
// writer to its own shard, so contention stays 1 regardless of T. Counter
// bumps are free (increment_cost_cycles = 0) so the measured gap isolates
// log-mutex serialization, not counter hardware.
//
// Emits BENCH_wal.json (threads x {sharded, single}) for the acceptance
// gate: 8-partition sharded write throughput >= 3x the single-log baseline.
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "bench/harness.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield::bench {
namespace {

struct ModeResult {
  double kops = 0;
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t fsyncs = 0;
};

ModeResult Measure(size_t threads, bool sharded, double seconds, const workload::DataSet& ds,
                   size_t keys_per_partition) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("shield_wal_bench_" + std::to_string(getpid()) + "_" +
                            std::to_string(threads) + (sharded ? "s" : "m")))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sgx::Enclave enclave(BenchEnclave());
  const sgx::SealingService sealer(AsBytes("wal-bench"), enclave.measurement());
  sgx::MonotonicCounterService::Options counter_opts;
  counter_opts.backing_file = dir + "/counters.bin";
  counter_opts.increment_cost_cycles = 0;
  sgx::MonotonicCounterService counters(counter_opts);

  shieldstore::Options options;
  options.num_buckets = 1 << 14;
  shieldstore::PartitionedStore store(enclave, options, threads);

  shieldstore::OpLogOptions log_opts;
  log_opts.path = dir + "/wal.log";
  log_opts.group_commit_ops = 8;
  log_opts.group_commit_window_us = 0;  // legacy discipline in BOTH modes
  log_opts.num_shards = sharded ? 0 : 1;
  log_opts.virtual_contention = sharded ? 1 : threads;
  shieldstore::WriteAheadStore wal(store, sealer, counters, log_opts);
  if (!wal.Open().ok()) {
    std::filesystem::remove_all(dir);
    return {};
  }

  // Pre-bucket keys by owning partition so the timed loop pays only for the
  // store + log work, not key generation and route filtering.
  std::vector<std::vector<std::string>> keys(threads);
  for (uint64_t i = 0; keys_per_partition > 0; ++i) {
    const std::string key = workload::KeyAt(i, ds.key_bytes);
    std::vector<std::string>& bucket = keys[store.PartitionOf(key)];
    if (bucket.size() < keys_per_partition) {
      bucket.push_back(key);
      bool all_full = true;
      for (const auto& b : keys) {
        all_full = all_full && b.size() >= keys_per_partition;
      }
      if (all_full) {
        break;
      }
    }
  }
  const std::string value = workload::ValueFor(0, 1, ds.value_bytes);

  ModeResult r;
  uint64_t total_ops = 0;
  double window = 0;
  for (size_t t = 0; t < threads; ++t) {
    uint64_t ops = 0;
    size_t next = 0;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(seconds));
    while (std::chrono::steady_clock::now() < deadline) {
      for (int batch = 0; batch < 16; ++batch) {
        if (!wal.Set(keys[t][next], value).ok()) {
          std::fprintf(stderr, "wal set failed\n");
          std::filesystem::remove_all(dir);
          return {};
        }
        next = (next + 1) % keys[t].size();
        ++ops;
      }
    }
    total_ops += ops;
    window = std::max(window, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                            start)
                                  .count());
  }
  const shieldstore::WalStats ws = wal.Stats();
  r.kops = window > 0 ? static_cast<double>(total_ops) / window / 1000.0 : 0;
  r.records = ws.records_logged;
  r.commits = ws.commits;
  r.fsyncs = ws.fsyncs;
  std::filesystem::remove_all(dir);
  return r;
}

int Run(double seconds, const std::string& out_path) {
  const workload::DataSet ds = workload::MediumDataSet();
  const size_t keys_per_partition = Scaled(2'000);

  Table table("WAL scaling: sharded per-partition logs vs single global log (write-only)");
  table.Header({"threads", "mode", "Kop/s", "fsyncs", "speedup"});

  std::string json = "{\n  \"bench\": \"wal_scaling\",\n  \"group_commit_ops\": 8,\n"
                     "  \"durability\": \"legacy auto-commit, fsync every 8 records\",\n"
                     "  \"results\": [\n";
  double speedup_at_max = 0;
  size_t max_threads = 0;
  bool first = true;
  for (size_t threads : {1, 2, 4, 8}) {
    const ModeResult single = Measure(threads, /*sharded=*/false, seconds, ds,
                                      keys_per_partition);
    const ModeResult shard = Measure(threads, /*sharded=*/true, seconds, ds,
                                     keys_per_partition);
    const double speedup = single.kops > 0 ? shard.kops / single.kops : 0;
    table.Row({std::to_string(threads), "single", Fmt(single.kops),
               std::to_string(single.fsyncs), "1.0x"});
    table.Row({std::to_string(threads), "sharded", Fmt(shard.kops),
               std::to_string(shard.fsyncs), Fmt(speedup, "%.2fx")});
    for (const auto& [mode, res] : {std::pair<const char*, const ModeResult&>{"single", single},
                                    {"sharded", shard}}) {
      json += std::string(first ? "" : ",\n") + "    {\"threads\": " + std::to_string(threads) +
              ", \"mode\": \"" + mode + "\", \"kops\": " + Fmt(res.kops, "%.2f") +
              ", \"records\": " + std::to_string(res.records) +
              ", \"commits\": " + std::to_string(res.commits) +
              ", \"fsyncs\": " + std::to_string(res.fsyncs) + "}";
      first = false;
    }
    if (threads >= max_threads) {
      max_threads = threads;
      speedup_at_max = speedup;
    }
  }
  json += "\n  ],\n  \"max_threads\": " + std::to_string(max_threads) +
          ",\n  \"speedup_at_max_threads\": " + Fmt(speedup_at_max, "%.2f") + "\n}\n";
  std::ofstream(out_path) << json;
  std::printf("# wrote %s; target: sharded >= 3x single at %zu threads (got %.2fx)\n",
              out_path.c_str(), max_threads, speedup_at_max);
  return speedup_at_max >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace shield::bench

int main(int argc, char** argv) {
  double seconds = 0.4;
  std::string out = "BENCH_wal.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      seconds = 0.05;
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_wal_scaling [--smoke] [--seconds S] [--out PATH]\n");
      return 2;
    }
  }
  return shield::bench::Run(seconds, out);
}
