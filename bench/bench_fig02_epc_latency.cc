// Figure 2: memory access latency with and without SGX, as the working set
// grows past the EPC limit.
//
// Paper shape: below the EPC limit SGX_Enclave reads are ~5.7x NoSGX; past
// it latency explodes (578x reads / 685x writes at the largest set), while
// SGX_Unprotected (enclave code touching untrusted memory) tracks NoSGX.
// Simulated EPC here: 24 MB, so the cliff lands between 16 MB and 32 MB.
#include <cstring>

#include "bench/harness.h"
#include "src/common/cycles.h"
#include "src/common/rng.h"

namespace shield::bench {
namespace {

// One random 64-byte access per draw, page-aligned like the paper's
// microbenchmark (a random 4 KB page within the working set each time).
// Warms the working set first so sub-EPC cases measure the resident plateau
// and super-EPC cases measure steady-state thrashing; each call draws a
// fresh random sequence so no pass replays another's footprint.
double MeasureNs(uint8_t* base, size_t wss, bool write, size_t iters,
                 const std::function<void(const void*, size_t, bool)>& touch) {
  static uint64_t call_seed = 99;
  Xoshiro256 rng(++call_seed);
  const size_t pages = wss / 4096;
  if (touch && wss <= kBenchEpcBytes) {
    // Warmup sweep so sub-EPC rows measure the resident plateau. Beyond the
    // EPC limit steady-state thrashing starts immediately; no warmup needed.
    for (size_t p = 0; p < pages; ++p) {
      touch(base + p * 4096, 64, false);
    }
  }
  uint64_t sink = 0;
  const uint64_t t0 = ReadCycleCounter();
  for (size_t i = 0; i < iters; ++i) {
    uint8_t* p = base + rng.NextBelow(pages) * 4096;
    if (touch) {
      touch(p, 64, write);
    }
    if (write) {
      std::memset(p, static_cast<int>(i), 64);
    } else {
      uint64_t v;
      std::memcpy(&v, p, sizeof(v));
      sink += v;
    }
  }
  asm volatile("" : : "r"(sink) : "memory");
  return CyclesToNanoseconds(ReadCycleCounter() - t0) / static_cast<double>(iters);
}

void Run() {
  sgx::Enclave enclave(BenchEnclave());
  const size_t kMaxWss = Scaled(128u << 20);
  uint8_t* enclave_mem = static_cast<uint8_t*>(enclave.Allocate(kMaxWss));
  std::vector<uint8_t> plain(kMaxWss);

  Table table("Figure 2: memory latency per op (ns), simulated EPC = 24 MB");
  table.Header({"WSS(MB)", "rd NoSGX", "rd SGX_Encl", "rd SGX_Unprot", "wr NoSGX",
                "wr SGX_Encl", "wr SGX_Unprot"});

  for (size_t mb : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u}) {
    const size_t wss = Scaled(mb << 20);
    if (wss > kMaxWss) {
      break;
    }
    const size_t fast_iters = 200'000;
    // Enclave accesses beyond EPC are slow; fewer iterations suffice.
    const size_t slow_iters = wss > kBenchEpcBytes ? 2'000 : 100'000;
    auto enclave_touch = [&](const void* p, size_t n, bool w) { enclave.Touch(p, n, w); };

    const double rd_nosgx = MeasureNs(plain.data(), wss, false, fast_iters, nullptr);
    const double rd_encl = MeasureNs(enclave_mem, wss, false, slow_iters, enclave_touch);
    // SGX_Unprotected: code "inside the enclave" reading untrusted memory —
    // no EPC involvement, no extra cost.
    const double rd_unprot = MeasureNs(plain.data(), wss, false, fast_iters, nullptr);
    const double wr_nosgx = MeasureNs(plain.data(), wss, true, fast_iters, nullptr);
    const double wr_encl = MeasureNs(enclave_mem, wss, true, slow_iters, enclave_touch);
    const double wr_unprot = MeasureNs(plain.data(), wss, true, fast_iters, nullptr);

    table.Row({std::to_string(mb), Fmt(rd_nosgx), Fmt(rd_encl), Fmt(rd_unprot), Fmt(wr_nosgx),
               Fmt(wr_encl), Fmt(wr_unprot)});
  }
  std::printf("# paper: enclave ~5.7x below the EPC limit, 100x+ past it;\n"
              "# unprotected-from-enclave tracks NoSGX throughout.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
