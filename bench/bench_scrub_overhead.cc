// Background-scrub overhead: Figure-18-style networked load (pipelined
// connections, RD95_Z) against a ShieldOpt partitioned store, with the
// server's maintenance thread off vs running the paced ScrubTick at the
// default budget. The self-healing design targets < 10% throughput cost for
// continuous background auditing; this bench measures it.
#include "bench/netload.h"
#include "bench/systems.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"

namespace shield::bench {
namespace {

double Measure(sgx::Enclave& enclave, shieldstore::PartitionedStore& store,
               const sgx::AttestationAuthority& authority, size_t threads, bool scrub,
               int scrub_interval_ms, const workload::WorkloadConfig& config,
               const workload::DataSet& ds, size_t num_keys) {
  net::ServerOptions server_options;
  server_options.use_hotcalls = true;
  server_options.enclave_workers = threads;
  if (scrub) {
    server_options.maintenance = [&store] { (void)store.ScrubTick(); };
    server_options.maintenance_interval_ms = scrub_interval_ms;
  }
  net::Server server(enclave, store, authority, server_options);
  if (!server.Start().ok()) {
    return 0;
  }
  NetLoadOptions load;
  load.connections = 8;
  load.pipeline_depth = 16;
  load.seconds = 0.6;
  const double kops = RunNetworkLoad(server.port(), authority, enclave.measurement(), config,
                                     ds, num_keys, load);
  server.Stop();
  return kops;
}

void Run() {
  const sgx::AttestationAuthority authority(AsBytes("bench-ias"));
  const size_t num_keys = Scaled(300'000);
  const size_t threads = 4;
  const workload::WorkloadConfig config = workload::RD95_Z();
  const workload::DataSet ds = workload::MediumDataSet();

  Table table("Background scrub overhead: ShieldOpt+HotCalls, 4 threads, RD95_Z, medium");
  table.Header({"scrub", "interval", "budget/tick", "Kop/s", "overhead"});

  sgx::Enclave enclave(BenchEnclave());
  shieldstore::Options options = ShieldOptOptions(num_keys);
  shieldstore::PartitionedStore store(enclave, options, threads);
  Preload(store, num_keys, ds);

  const double off = Measure(enclave, store, authority, threads, false, 0, config, ds, num_keys);
  table.Row({"off", "-", "-", Fmt(off), "-"});
  for (int interval_ms : {50, 20, 5}) {
    const double on =
        Measure(enclave, store, authority, threads, true, interval_ms, config, ds, num_keys);
    table.Row({"on", std::to_string(interval_ms) + " ms",
               std::to_string(options.scrub_budget_buckets), Fmt(on),
               Fmt((off - on) / std::max(off, 1e-9) * 100, "%.1f%%")});
  }
  std::printf("# target: default budget (%zu buckets/tick) costs < 10%% throughput.\n",
              options.scrub_budget_buckets);
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
