// Figure 19: persistence support (§4.4) — no persistence vs naive
// (blocking) vs optimized (Algorithm 1) snapshots, across data sizes and
// read/write mixes.
//
// Paper shape: naive snapshots cost up to 25% at the large set (requests
// stall while the table is written out); the optimized design degrades only
// 2.1% / 2.6% / 6.5% (small/medium/large), and read-only workloads see
// almost nothing. The paper measures this networked; this harness measures
// standalone, which preserves the stall-vs-no-stall contrast (EXPERIMENTS.md
// records the deviation).
#include <filesystem>

#include "bench/harness.h"
#include "src/shieldstore/persist.h"

namespace shield::bench {
namespace {

constexpr double kRunSeconds = 2.0;
constexpr double kSnapshotAt = 0.3;  // seconds into the run

double MeasureKops(shieldstore::Store& store, shieldstore::Snapshotter* snap,
                   const workload::WorkloadConfig& config, const workload::DataSet& ds,
                   size_t num_keys, int mode) {
  workload::WorkloadGenerator gen(config, num_keys, 77);
  uint64_t version = 1;
  uint64_t ops = 0;
  bool snapshot_started = false;
  bool snapshot_finished = false;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  while (elapsed() < kRunSeconds) {
    for (int batch = 0; batch < 32; ++batch) {
      ExecuteOp(store, gen.Next(), ds, &version);
      ++ops;
    }
    if (mode != 0 && !snapshot_started && elapsed() >= kSnapshotAt) {
      snapshot_started = true;
      if (mode == 1) {
        (void)snap->SnapshotNow();  // naive: the owner blocks right here
        snapshot_finished = true;
      } else {
        (void)snap->StartSnapshot();  // optimized: writer runs in background
      }
    }
    if (mode == 2 && snapshot_started && !snapshot_finished && snap->WriterDone()) {
      (void)snap->FinishSnapshot(/*wait=*/true);
      snapshot_finished = true;
    }
  }
  if (mode == 2 && snapshot_started && !snapshot_finished) {
    (void)snap->FinishSnapshot(/*wait=*/true);
  }
  return static_cast<double>(ops) / elapsed() / 1000.0;
}

void Run() {
  const std::string dir = "/tmp/shieldstore_bench_persist";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const size_t num_keys = Scaled(200'000);
  const std::vector<workload::WorkloadConfig> workloads = {workload::RD50_Z(),
                                                           workload::RD95_Z(),
                                                           workload::RD100_Z()};

  Table table("Figure 19: persistence modes (Kop/s; snapshot taken mid-run)");
  table.Header({"dataset", "workload", "no persist", "naive", "optimized", "opt loss"});

  for (const workload::DataSet& ds :
       {workload::SmallDataSet(), workload::MediumDataSet(), workload::LargeDataSet()}) {
    for (const workload::WorkloadConfig& config : workloads) {
      double kops[3] = {};
      for (int mode = 0; mode < 3; ++mode) {  // 0 none, 1 naive, 2 optimized
        sgx::Enclave enclave(BenchEnclave());
        shieldstore::Options options;
        options.num_buckets = num_keys;
        shieldstore::Store store(enclave, options);
        Preload(store, num_keys, ds);
        sgx::SealingService sealer(AsBytes("bench-fuse"), enclave.measurement());
        sgx::MonotonicCounterService::Options counter_options;
        counter_options.backing_file = dir + "/counters.bin";
        counter_options.increment_cost_cycles = 500'000;
        sgx::MonotonicCounterService counters(counter_options);
        shieldstore::Snapshotter snap(store, sealer, counters,
                                      {dir, /*optimized=*/mode == 2});
        kops[mode] = MeasureKops(store, mode == 0 ? nullptr : &snap, config, ds, num_keys,
                                 mode);
      }
      table.Row({ds.name, config.name, Fmt(kops[0]), Fmt(kops[1]), Fmt(kops[2]),
                 Fmt((kops[0] - kops[2]) / std::max(kops[0], 1e-9) * 100, "%.1f%%")});
    }
  }
  std::filesystem::remove_all(dir);
  std::printf("# paper: naive loses up to 25%% at the large set; optimized 2.1/2.6/6.5%%\n"
              "# (small/medium/large), and ~0 on read-only workloads.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
