// Figure 17: working-set sweep with 4 KB values — Eleos vs ShieldOpt vs
// ShieldOpt+cache (§6.3).
//
// Paper shape (scaled /43: 32 MB-8 GB -> 0.75-190 MB; EPC 90 -> 24 MB;
// Eleos pool ceiling 2 GB -> 48 MB): Eleos wins while the set fits its
// in-EPC page cache, degrades as it spills, and cannot run past its pool
// ceiling; ShieldOpt is flat throughout; ShieldOpt+cache matches Eleos at
// small sets by serving hits from the leftover EPC.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  const workload::DataSet ds{"4k", 16, 4096};
  const workload::WorkloadConfig config = workload::RD100_U();
  const size_t eleos_pool_limit = Scaled(48u << 20);  // the 2 GB ceiling, scaled

  Table table("Figure 17: working-set sweep, 4 KB values (Kop/s, 100% get)");
  table.Header({"WSS(MB)", "Eleos", "ShieldOpt", "ShieldOpt+cache"});

  for (size_t mb : {8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u}) {
    const size_t wss = Scaled(mb << 20);
    const size_t num_keys = std::max<size_t>(wss / (4096 + 64), 256);
    std::vector<std::string> row = {std::to_string(mb)};

    if (wss <= eleos_pool_limit) {
      eleos::SuvmConfig suvm;
      suvm.cache_bytes = 16u << 20;
      suvm.pool_bytes = eleos_pool_limit;
      suvm.max_pools = 1;
      auto eleos_system = MakeEleosSystem(suvm, num_keys);
      if (Preload(eleos_system->store(), num_keys, ds)) {
        row.push_back(Fmt(eleos_system->Run(config, ds, num_keys, 0.4).Kops()));
      } else {
        row.push_back("n/a (pool)");
      }
    } else {
      // Beyond the memsys5 pool ceiling: Eleos cannot hold the data set
      // (the paper reports Eleos capped at 2 GB).
      row.push_back("n/a (pool)");
    }

    for (bool cache : {false, true}) {
      shieldstore::Options options = ShieldOptOptions(num_keys);
      options.epc_cache = cache;
      options.cache_bytes = 8u << 20;
      options.cache_slots = (8u << 20) / (4096 + 128);
      auto system = MakeShieldSystem(cache ? "ShieldOpt+cache" : "ShieldOpt", options, 1);
      Preload(system->store(), num_keys, ds);
      row.push_back(Fmt(system->Run(config, ds, num_keys, 0.4).Kops()));
    }
    table.Row(row);
  }
  std::printf("# paper: Eleos fastest while the set fits its page cache, then degrades and\n"
              "# stops at its pool ceiling; ShieldOpt flat; +cache matches Eleos when small.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
