// Metrics overhead gate: networked throughput with the obs layer as
// compiled into THIS binary. check.sh builds the tree twice — once with
// -DSHIELD_METRICS=ON (always-on recording, the default) and once with OFF
// (every Inc/Record/ScopedStage a no-op) — runs both flavours of this bench
// on the same workload, and gates the ratio: recording must cost < 3%
// throughput. The final stdout line is machine-parseable:
//
//   RESULT kops <value>
//
// Configuration leans cheap-op/hot-path (plaintext sessions, read-heavy,
// volatile store) so metric recording is the largest it can be relative to
// total work — an honest worst case for the gate.
#include <string>

#include "bench/netload.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"

namespace shield::bench {
namespace {

int Run(double seconds) {
  sgx::Enclave enclave(BenchEnclave());
  const sgx::AttestationAuthority authority(AsBytes("metrics-bench"));

  shieldstore::Options options;
  options.num_buckets = 1 << 14;
  shieldstore::PartitionedStore store(enclave, options, 4);

  const workload::DataSet ds = workload::SmallDataSet();
  const size_t num_keys = Scaled(4'000);
  if (!Preload(store, num_keys, ds)) {
    std::fprintf(stderr, "preload failed\n");
    return 2;
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.encrypt = false;
  server_options.enclave_workers = 4;
  net::Server server(enclave, store, authority, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 2;
  }

  NetLoadOptions load;
  load.connections = 4;
  load.pipeline_depth = 16;
  load.seconds = seconds;
  load.encrypt = false;
  const workload::WorkloadConfig config = workload::RD95_U();

  // Warmup round (JIT-free C++, but populates caches and the EPC resident
  // set), then the measured round.
  NetLoadOptions warmup = load;
  warmup.seconds = std::min(seconds * 0.25, 0.1);
  (void)RunNetworkLoad(server.port(), authority, enclave.measurement(), config, ds, num_keys,
                       warmup);
  const double kops = RunNetworkLoad(server.port(), authority, enclave.measurement(), config,
                                     ds, num_keys, load);

  // What the recording measured about itself (all-zero in the no-op build);
  // the quantile columns land in BENCH_metrics_overhead.json via the table.
  const obs::MetricsSnapshot snap = server.BuildStatsSnapshot();
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  if (const obs::HistogramData* h = snap.Histogram("net.latency.get");
      h != nullptr && h->count > 0) {
    p50 = h->Quantile(0.50) / 1e3;
    p95 = h->Quantile(0.95) / 1e3;
    p99 = h->Quantile(0.99) / 1e3;
  }

  Table table(std::string("Metrics overhead probe (obs layer ") +
              (SHIELD_OBS_ENABLED ? "COMPILED IN" : "COMPILED OUT") + ")");
  table.Header({"connections", "depth", "workload", "Kop/s", "get p50 us", "get p95 us",
                "get p99 us"});
  table.Row({std::to_string(load.connections), std::to_string(load.pipeline_depth), "RD95_U",
             Fmt(kops), Fmt(p50), Fmt(p95), Fmt(p99)});

  server.Stop();
  std::printf("RESULT kops %.2f\n", kops);
  return 0;
}

}  // namespace
}  // namespace shield::bench

int main(int argc, char** argv) {
  double seconds = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      seconds = 0.3;
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_metrics_overhead [--smoke] [--seconds S]\n");
      return 2;
    }
  }
  return shield::bench::Run(seconds);
}
