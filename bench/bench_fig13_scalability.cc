// Figure 13: multi-core scalability from 1 to 4 threads for
// Memcached+graphene, Baseline and ShieldOpt (large data set, all eight
// workloads; this table prints the per-thread-count average plus the two
// extreme workloads).
//
// Paper shape: Baseline and Memcached+graphene stop scaling at 2 threads
// (paging serializes them; memcached's lock-holding maintainer even regresses
// it at 4); ShieldOpt scales near-linearly, ~330 Kop/s to ~1250 Kop/s.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  // Paper: 10M keys vs ~90 MB EPC (3.5x-58x overcommit across sizes).
  // Scaled: 1.2M keys vs 24 MB EPC keeps even the small set past the EPC.
  const size_t num_keys = Scaled(1'200'000);
  const size_t shield_buckets = Scaled(800'000);  // MAC hashes ~70% of EPC, like the paper
  const workload::DataSet ds = workload::LargeDataSet();

  Table table("Figure 13: scalability (avg Kop/s over 8 workloads), large data set");
  table.Header({"threads", "Mc+graphene", "Baseline", "ShieldOpt", "SO speedup"});

  double shield_1t = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    double kops[3] = {};
    for (int s = 0; s < 3; ++s) {
      std::unique_ptr<System> system;
      switch (s) {
        case 0:
          system = MakeMemcachedSystem(true, num_keys, threads);
          break;
        case 1:
          system = MakeBaselineSystem(true, num_keys, threads);
          break;
        case 2:
          system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(shield_buckets), threads);
          break;
      }
      Preload(system->store(), num_keys, ds);
      double total = 0;
      for (const workload::WorkloadConfig& config : workload::AllTable2Workloads()) {
        total += system->Run(config, ds, num_keys, 0.12).Kops();
      }
      kops[s] = total / static_cast<double>(workload::AllTable2Workloads().size());
    }
    if (threads == 1) {
      shield_1t = kops[2];
    }
    table.Row({std::to_string(threads), Fmt(kops[0]), Fmt(kops[1]), Fmt(kops[2]),
               Fmt(kops[2] / std::max(shield_1t, 1e-9), "%.2fx")});
  }
  std::printf("# paper: Baseline/Memcached+graphene flat (or regressing) beyond 2 threads;\n"
              "# ShieldOpt near-linear to 4 threads (~3.8x).\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
