#include "bench/systems.h"

namespace shield::bench {
namespace {

sgx::EnclaveConfig WithContention(sgx::EnclaveConfig cfg, size_t threads, bool model) {
  cfg.epc.virtual_contention = model ? std::max<size_t>(threads, 1) : 1;
  return cfg;
}

class ShieldSystem : public System {
 public:
  ShieldSystem(std::string name, const shieldstore::Options& options, size_t threads,
               const sgx::EnclaveConfig& enclave_cfg, bool model_contention)
      : name_(std::move(name)),
        enclave_(WithContention(enclave_cfg, threads, model_contention)),
        store_(enclave_, options, threads) {}

  std::string name() const override { return name_; }
  kv::KeyValueStore& store() override { return store_; }
  sgx::Enclave* enclave() override { return &enclave_; }

  RunResult Run(const workload::WorkloadConfig& config, const workload::DataSet& ds,
                size_t num_keys, double seconds) override {
    if (store_.num_partitions() == 1) {
      return RunWorkload(store_.partition(0), config, ds, num_keys, seconds);
    }
    return RunWorkloadPartitioned(store_, config, ds, num_keys, seconds);
  }

 private:
  std::string name_;
  sgx::Enclave enclave_;
  shieldstore::PartitionedStore store_;
};

class BaselineSystem : public System {
 public:
  BaselineSystem(bool sgx, size_t num_buckets, size_t threads,
                 const sgx::EnclaveConfig& enclave_cfg, bool model_contention)
      : sgx_(sgx), enclave_(WithContention(enclave_cfg, threads, model_contention)) {
    std::vector<std::unique_ptr<baseline::BaselineStore>> parts;
    for (size_t i = 0; i < threads; ++i) {
      parts.push_back(std::make_unique<baseline::BaselineStore>(
          sgx ? &enclave_ : nullptr,
          sgx ? baseline::Placement::kEnclaveNaive : baseline::Placement::kNoSgx,
          std::max<size_t>(num_buckets / threads, 1)));
    }
    crypto::SipHashKey route_key{};
    enclave_.ReadRand(MutableByteSpan(route_key.data(), route_key.size()));
    store_ = std::make_unique<kv::PartitionedKv<baseline::BaselineStore>>(route_key,
                                                                          std::move(parts));
  }

  std::string name() const override { return sgx_ ? "Baseline" : "InsecureBaseline"; }
  kv::KeyValueStore& store() override { return *store_; }
  sgx::Enclave* enclave() override { return &enclave_; }

  RunResult Run(const workload::WorkloadConfig& config, const workload::DataSet& ds,
                size_t num_keys, double seconds) override {
    if (store_->num_partitions() == 1) {
      return RunWorkload(store_->partition(0), config, ds, num_keys, seconds);
    }
    return RunWorkloadPartitioned(*store_, config, ds, num_keys, seconds);
  }

 private:
  bool sgx_;
  sgx::Enclave enclave_;
  std::unique_ptr<kv::PartitionedKv<baseline::BaselineStore>> store_;
};

class MemcachedSystem : public System {
 public:
  MemcachedSystem(bool graphene, size_t num_buckets, size_t threads,
                  const sgx::EnclaveConfig& enclave_cfg, bool model_contention)
      : graphene_(graphene),
        threads_(threads),
        // The global cache lock is the op-level serializer and already covers
        // the EPC faults taken under it; charging the fault path separately
        // would double-count, so the enclave keeps contention 1.
        enclave_(WithContention(enclave_cfg, 1, model_contention)) {
    baseline::MemcachedOptions options;
    options.graphene = graphene;
    options.num_buckets = num_buckets;
    options.virtual_contention = model_contention ? std::max<size_t>(threads, 1) : 1;
    store_ = std::make_unique<baseline::MemcachedLikeStore>(graphene ? &enclave_ : nullptr,
                                                            options);
  }

  std::string name() const override {
    return graphene_ ? "Memcached+graphene" : "InsecureMemcached";
  }
  kv::KeyValueStore& store() override { return *store_; }
  sgx::Enclave* enclave() override { return &enclave_; }

  RunResult Run(const workload::WorkloadConfig& config, const workload::DataSet& ds,
                size_t num_keys, double seconds) override {
    // memcached's model: every worker thread drives the shared store.
    return RunWorkloadShared(*store_, config, ds, num_keys, threads_, seconds);
  }

 private:
  bool graphene_;
  size_t threads_;
  sgx::Enclave enclave_;
  std::unique_ptr<baseline::MemcachedLikeStore> store_;
};

class EleosSystem : public System {
 public:
  EleosSystem(const eleos::SuvmConfig& suvm, size_t num_buckets,
              const sgx::EnclaveConfig& enclave_cfg)
      : enclave_(enclave_cfg), store_(enclave_, suvm, num_buckets) {}

  std::string name() const override { return "Eleos"; }
  kv::KeyValueStore& store() override { return store_; }
  sgx::Enclave* enclave() override { return &enclave_; }

  RunResult Run(const workload::WorkloadConfig& config, const workload::DataSet& ds,
                size_t num_keys, double seconds) override {
    return RunWorkload(store_, config, ds, num_keys, seconds);
  }

 private:
  sgx::Enclave enclave_;
  eleos::EleosStore store_;
};

}  // namespace

std::unique_ptr<System> MakeShieldSystem(std::string name, const shieldstore::Options& options,
                                         size_t threads, const sgx::EnclaveConfig& enclave_cfg,
                                         bool model_contention) {
  return std::make_unique<ShieldSystem>(std::move(name), options, threads, enclave_cfg,
                                        model_contention);
}

std::unique_ptr<System> MakeBaselineSystem(bool sgx, size_t num_buckets, size_t threads,
                                           const sgx::EnclaveConfig& enclave_cfg,
                                           bool model_contention) {
  return std::make_unique<BaselineSystem>(sgx, num_buckets, threads, enclave_cfg,
                                          model_contention);
}

std::unique_ptr<System> MakeMemcachedSystem(bool graphene, size_t num_buckets, size_t threads,
                                            const sgx::EnclaveConfig& enclave_cfg,
                                            bool model_contention) {
  return std::make_unique<MemcachedSystem>(graphene, num_buckets, threads, enclave_cfg,
                                           model_contention);
}

std::unique_ptr<System> MakeEleosSystem(const eleos::SuvmConfig& suvm, size_t num_buckets,
                                        const sgx::EnclaveConfig& enclave_cfg) {
  return std::make_unique<EleosSystem>(suvm, num_buckets, enclave_cfg);
}

}  // namespace shield::bench
