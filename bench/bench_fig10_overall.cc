// Figure 10: overall standalone throughput — Memcached+graphene, Baseline,
// ShieldBase, ShieldOpt across the three data sizes at 1 and 4 threads,
// averaged over the eight Table 2 workloads, normalized to Baseline.
//
// Paper shape: ShieldBase 7-10x over Baseline at 1 thread, 21-26x at 4;
// ShieldOpt 8-11x and 24-30x; Memcached+graphene within ±35% of Baseline.
#include "bench/systems.h"

namespace shield::bench {
namespace {

constexpr double kSecondsPerCell = 0.12;

double AverageKops(System& system, const workload::DataSet& ds, size_t num_keys) {
  double total = 0;
  for (const workload::WorkloadConfig& config : workload::AllTable2Workloads()) {
    total += system.Run(config, ds, num_keys, kSecondsPerCell).Kops();
  }
  return total / static_cast<double>(workload::AllTable2Workloads().size());
}

void Run() {
  // Paper: 10M keys vs ~90 MB EPC (3.5x-58x overcommit across sizes).
  // Scaled: 1.2M keys vs 24 MB EPC keeps even the small set past the EPC.
  const size_t num_keys = Scaled(1'200'000);
  const size_t shield_buckets = Scaled(800'000);  // MAC hashes ~70% of EPC, like the paper
  Table table("Figure 10: standalone throughput normalized to Baseline (avg of 8 workloads)");
  table.Header({"threads", "dataset", "Mc+graphene", "Baseline", "ShieldBase", "ShieldOpt",
                "SB/Base", "SO/Base"});

  for (size_t threads : {1u, 4u}) {
    for (const workload::DataSet& ds :
         {workload::SmallDataSet(), workload::MediumDataSet(), workload::LargeDataSet()}) {
      double kops[4] = {};
      const char* names[4] = {"mc", "base", "sbase", "sopt"};
      (void)names;
      for (int s = 0; s < 4; ++s) {
        std::unique_ptr<System> system;
        switch (s) {
          case 0:
            system = MakeMemcachedSystem(true, num_keys, threads);
            break;
          case 1:
            system = MakeBaselineSystem(true, num_keys, threads);
            break;
          case 2:
            system = MakeShieldSystem("ShieldBase", ShieldBaseOptions(shield_buckets), threads);
            break;
          case 3:
            system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(shield_buckets), threads);
            break;
        }
        if (!Preload(system->store(), num_keys, ds)) {
          kops[s] = 0;
          continue;
        }
        kops[s] = AverageKops(*system, ds, num_keys);
      }
      const double base = std::max(kops[1], 1e-9);
      table.Row({std::to_string(threads), ds.name, Fmt(kops[0]), Fmt(kops[1]), Fmt(kops[2]),
                 Fmt(kops[3]), Fmt(kops[2] / base, "%.1fx"), Fmt(kops[3] / base, "%.1fx")});
    }
  }
  std::printf("# paper: ShieldOpt 8-11x over Baseline at 1 thread, 24-30x at 4 threads;\n"
              "# ShieldBase slightly below ShieldOpt; Memcached+graphene near Baseline.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
