// Figure 16: ShieldOpt vs Eleos across value sizes at a fixed working set
// (paper: 500 MB, 100% gets; scaled here to 48 MB against a 24 MB EPC and a
// 16 MB SUVM page cache).
//
// Paper shape: Eleos is competitive at 1-4 KB values (its 4 KB paging
// granularity matches the objects) and collapses at 512 B / 16 B, where
// ShieldStore's per-entry granularity wins 7x / 40x.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  const size_t total_bytes = Scaled(48u << 20);
  const workload::WorkloadConfig config = workload::RD100_U();

  Table table("Figure 16: value-size sweep at fixed 48 MB working set (Kop/s, 100% get)");
  table.Header({"value bytes", "Eleos", "ShieldOpt", "ratio SO/EL"});

  for (size_t value_bytes : {16u, 512u, 1024u, 4096u}) {
    const workload::DataSet ds{"sweep", 16, value_bytes};
    const size_t num_keys = std::max<size_t>(total_bytes / (value_bytes + 64), 1000);

    eleos::SuvmConfig suvm;
    suvm.cache_bytes = 16u << 20;
    suvm.pool_bytes = 96u << 20;
    suvm.max_pools = 1;
    auto eleos_system = MakeEleosSystem(suvm, num_keys);
    Preload(eleos_system->store(), num_keys, ds);
    const double eleos_kops = eleos_system->Run(config, ds, num_keys, 0.4).Kops();

    shieldstore::Options options = ShieldOptOptions(num_keys);
    options.num_mac_hashes = std::min<size_t>(num_keys, Scaled(512'000));
    auto shield_system = MakeShieldSystem("ShieldOpt", options, 1);
    Preload(shield_system->store(), num_keys, ds);
    const double shield_kops = shield_system->Run(config, ds, num_keys, 0.4).Kops();

    table.Row({std::to_string(value_bytes), Fmt(eleos_kops), Fmt(shield_kops),
               Fmt(shield_kops / std::max(eleos_kops, 1e-9), "%.1fx")});
  }
  std::printf("# paper: ShieldStore 40x at 16 B and 7x at 512 B; Eleos competitive at\n"
              "# 1 KB / 4 KB where objects match its paging granularity.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
