// Table 1: validating the baseline's maturity — networked throughput of the
// memcached-like store vs our baseline hash store, both WITHOUT SGX, 512 B
// values, 1 and 4 worker threads.
//
// Paper numbers: 313.5 vs 311.6 Kop/s (1 thread), 876.6 vs 845.8 (4): the
// baseline matches memcached, so later SGX comparisons are fair.
#include "bench/netload.h"
#include "bench/systems.h"
#include "src/net/server.h"

namespace shield::bench {
namespace {

void Run() {
  const sgx::AttestationAuthority authority(AsBytes("bench-ias"));
  const size_t num_keys = Scaled(200'000);
  const workload::DataSet ds = workload::LargeDataSet();  // 512 B values
  const workload::WorkloadConfig config = workload::RD95_Z();

  Table table("Table 1: memcached-like vs baseline, no SGX, networked (Kop/s)");
  table.Header({"threads", "memcached", "baseline", "ratio"});

  for (size_t threads : {1u, 4u}) {
    double kops[2] = {};
    for (int s = 0; s < 2; ++s) {
      std::unique_ptr<System> system =
          s == 0 ? MakeMemcachedSystem(false, num_keys, threads, InsecureEnclave(), false)
                 : MakeBaselineSystem(false, num_keys, threads, InsecureEnclave(), false);
      Preload(system->store(), num_keys, ds);
      net::ServerOptions server_options;
      server_options.encrypt = false;
      server_options.enclave_workers = threads;
      net::Server server(*system->enclave(), system->store(), authority, server_options);
      if (!server.Start().ok()) {
        continue;
      }
      NetLoadOptions load;
      load.encrypt = false;
      load.seconds = 0.5;
      kops[s] = RunNetworkLoad(server.port(), authority, system->enclave()->measurement(),
                               config, ds, num_keys, load);
      server.Stop();
    }
    table.Row({std::to_string(threads), Fmt(kops[0]), Fmt(kops[1]),
               Fmt(kops[1] / std::max(kops[0], 1e-9), "%.2f")});
  }
  std::printf("# paper: near parity at both thread counts (ratio ~0.96-0.99).\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
