// Restart-path comparison: sealed-snapshot replay (decrypt + re-insert every
// entry through the enclave) vs mmap-backed persistent-arena attach (map the
// heap file, validate the superblock, load the chain table, unseal one
// metadata blob — per-entry MACs re-verify lazily on first touch). Both
// paths go through the real boot call, WriteAheadStore::RestoreFromDisk.
//
// Exit code enforces the acceptance gate: arena attach >= 10x faster than
// snapshot replay at the largest entry count (1M entries full, 100k under
// --smoke). The speedup should GROW with the data set — replay is O(entries),
// attach is O(1) in entries (superblock + table + one sealed blob).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield::bench {
namespace {

constexpr size_t kPartitions = 4;

struct Stack {
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<sgx::SealingService> sealer;
  std::unique_ptr<sgx::MonotonicCounterService> counters;
  std::unique_ptr<shieldstore::PartitionedStore> store;
  std::unique_ptr<shieldstore::WriteAheadStore> wal;
};

Stack MakeStack(const std::string& dir, size_t entries, bool persist) {
  Stack s;
  s.enclave = std::make_unique<sgx::Enclave>(BenchEnclave());
  s.sealer = std::make_unique<sgx::SealingService>(AsBytes("bench-fuse"),
                                                   s.enclave->measurement());
  sgx::MonotonicCounterService::Options counter_opts;
  counter_opts.backing_file = dir + "/counters.bin";
  counter_opts.increment_cost_cycles = 0;
  s.counters = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
  shieldstore::Options options;
  options.num_buckets = entries;
  options.heap_chunk_bytes = 4u << 20;
  if (persist) {
    options.persist_dir = dir + "/heap";
    // Per-partition arena capacity, sized for entries plus chain table with
    // headroom; the file is sparse so unwritten capacity costs nothing.
    options.persist_capacity_bytes =
        std::max<size_t>(size_t{64} << 20, entries * 512 / kPartitions);
  }
  s.store = std::make_unique<shieldstore::PartitionedStore>(*s.enclave, options, kPartitions);
  shieldstore::OpLogOptions log_opts;
  log_opts.path = dir + "/wal.log";
  s.wal = std::make_unique<shieldstore::WriteAheadStore>(*s.store, *s.sealer, *s.counters,
                                                         log_opts);
  return s;
}

std::string KeyOf(size_t i) { return "restart-key-" + std::to_string(i); }

// Loads entries straight into the (Partitioned)Store — the WAL stays empty,
// so the restart timing below measures exactly the baseline-restore path
// (snapshot replay or arena attach), not tail replay.
bool Load(Stack& s, size_t entries) {
  const std::string value(64, 'v');
  for (size_t i = 0; i < entries; ++i) {
    if (!s.store->Set(KeyOf(i), value).ok()) {
      return false;
    }
  }
  return true;
}

// Boots a fresh stack over `dir` and times RestoreFromDisk. Returns restore
// milliseconds, or a negative value on failure. Spot-checks reads afterwards
// (which on the arena path also exercises first-touch lazy verification).
double TimeRestart(const std::string& dir, size_t entries, bool persist) {
  Stack s = MakeStack(dir, entries, persist);
  if (!s.wal->Open().ok()) {
    return -1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Status restored = s.wal->RestoreFromDisk(dir + "/snapshots");
  const auto t1 = std::chrono::steady_clock::now();
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.ToString().c_str());
    return -1;
  }
  for (size_t i = 0; i < entries; i += std::max<size_t>(entries / 16, 1)) {
    const Result<std::string> got = s.wal->Get(KeyOf(i));
    if (!got.ok() || got.value() != std::string(64, 'v')) {
      std::fprintf(stderr, "spot check failed at %zu\n", i);
      return -1;
    }
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int Run(const std::vector<size_t>& sizes) {
  const std::string root = "/tmp/shieldstore_bench_restart";
  Table table("Restart: sealed-snapshot replay vs persistent-arena attach");
  table.Header({"entries", "snapshot ms", "arena ms", "speedup"});
  double gate_speedup = 0;

  for (size_t entries : sizes) {
    double ms[2] = {};
    for (int persist = 0; persist < 2; ++persist) {
      const std::string dir = root + "/" + (persist ? "arena" : "snap");
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);
      {
        Stack s = MakeStack(dir, entries, persist != 0);
        if (!s.wal->Open().ok() ||
            !s.wal->RestoreFromDisk(dir + "/snapshots").ok()) {
          return 2;
        }
        if (!Load(s, entries)) {
          return 2;
        }
        const Status saved =
            persist != 0 ? s.store->CheckpointAll(*s.sealer, *s.counters)
                         : s.store->SnapshotAll(*s.sealer, *s.counters, dir + "/snapshots");
        if (!saved.ok()) {
          std::fprintf(stderr, "baseline save failed: %s\n", saved.ToString().c_str());
          return 2;
        }
      }
      ms[persist] = TimeRestart(dir, entries, persist != 0);
      if (ms[persist] < 0) {
        return 2;
      }
    }
    const double speedup = ms[1] > 0 ? ms[0] / ms[1] : 0;
    gate_speedup = speedup;  // gate applies at the LAST (largest) size
    table.Row({std::to_string(entries), Fmt(ms[0], "%.2f"), Fmt(ms[1], "%.2f"),
               Fmt(speedup, "%.1fx")});
  }
  std::filesystem::remove_all(root);
  std::printf("# gate: arena attach >= 10x snapshot replay at the largest size "
              "(got %.1fx)\n",
              gate_speedup);
  return gate_speedup >= 10.0 ? 0 : 1;
}

}  // namespace
}  // namespace shield::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_restart [--smoke]\n");
      return 2;
    }
  }
  const std::vector<size_t> sizes = smoke
                                        ? std::vector<size_t>{10'000, 100'000}
                                        : std::vector<size_t>{10'000, 100'000, 1'000'000};
  return shield::bench::Run(sizes);
}
