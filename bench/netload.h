// Networked load generation (§6.4): C client connections, each pipelining D
// outstanding requests — simulating C x D concurrent users against a server
// on loopback. ManySessionLoad scales C to the tens of thousands: one
// epoll-driven generator process holding every session, with mixed
// idle/pipelined/bursty profiles (the reactor benchmark).
#ifndef SHIELDSTORE_BENCH_NETLOAD_H_
#define SHIELDSTORE_BENCH_NETLOAD_H_

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/obs/tracer.h"

namespace shield::bench {

struct NetLoadOptions {
  size_t connections = 8;
  size_t pipeline_depth = 16;
  double seconds = 0.4;
  bool encrypt = true;
};

// Returns aggregate Kop/s (ops counted on response receipt).
inline double RunNetworkLoad(uint16_t port, const sgx::AttestationAuthority& authority,
                             const sgx::Measurement& measurement,
                             const workload::WorkloadConfig& config,
                             const workload::DataSet& ds, size_t num_keys,
                             const NetLoadOptions& options) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(authority, measurement, options.encrypt);
      if (!client.Connect(port).ok()) {
        return;
      }
      workload::WorkloadGenerator gen(config, num_keys, 3000 + c);
      uint64_t version = 1;
      auto make_request = [&]() -> net::Request {
        const workload::Op op = gen.Next();
        net::Request request;
        request.key = workload::KeyAt(op.key_index, ds.key_bytes);
        switch (op.kind) {
          case workload::Op::Kind::kGet:
            request.op = net::OpCode::kGet;
            break;
          case workload::Op::Kind::kSet:
            request.op = net::OpCode::kSet;
            request.value = workload::ValueFor(op.key_index, version++, ds.value_bytes);
            break;
          case workload::Op::Kind::kAppend:
            request.op = net::OpCode::kAppend;
            request.value = "app8byte";
            break;
          case workload::Op::Kind::kReadModifyWrite:
            // Read-modify-write over the wire degenerates to an increment-
            // style server-side op; use append as the mutating half.
            request.op = net::OpCode::kAppend;
            request.value = "m";
            break;
        }
        return request;
      };
      size_t in_flight = 0;
      uint64_t ops = 0;
      for (size_t i = 0; i < options.pipeline_depth; ++i) {
        if (client.SendRequest(make_request()).ok()) {
          ++in_flight;
        }
      }
      while (!stop.load(std::memory_order_relaxed) && in_flight > 0) {
        if (!client.ReceiveResponse().ok()) {
          break;
        }
        ++ops;
        if (client.SendRequest(make_request()).ok()) {
          // window stays full
        } else {
          --in_flight;
        }
      }
      // Drain the window.
      while (in_flight > 0 && client.ReceiveResponse().ok()) {
        --in_flight;
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(total_ops.load()) / elapsed / 1000.0;
}

// Batched load: like RunNetworkLoad but each connection packs `depth`
// write-heavy ops into one kBatch frame per round trip (depth 1 sends plain
// single-op frames — the unbatched baseline). Ops are counted per sub-op on
// batch-response receipt, so Kop/s across depths compares the same work.
inline double RunBatchedNetworkLoad(uint16_t port, const sgx::AttestationAuthority& authority,
                                    const sgx::Measurement& measurement,
                                    const workload::DataSet& ds, size_t num_keys,
                                    size_t depth, const NetLoadOptions& options) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(authority, measurement, options.encrypt);
      if (!client.Connect(port).ok()) {
        return;
      }
      Xoshiro256 rng(7000 + c);
      uint64_t version = 1;
      uint64_t ops = 0;
      auto make_request = [&]() -> net::Request {
        net::Request request;
        const uint64_t key_index = rng.NextBelow(num_keys);
        request.key = workload::KeyAt(key_index, ds.key_bytes);
        if (rng.NextBelow(10) < 9) {  // write-heavy: 90% sets
          request.op = net::OpCode::kSet;
          request.value = workload::ValueFor(key_index, version++, ds.value_bytes);
        } else {
          request.op = net::OpCode::kGet;
        }
        return request;
      };
      while (!stop.load(std::memory_order_relaxed)) {
        if (depth <= 1) {
          if (!client.Execute(make_request()).ok()) {
            break;
          }
          ++ops;
        } else {
          std::vector<net::Request> batch;
          batch.reserve(depth);
          for (size_t i = 0; i < depth; ++i) {
            batch.push_back(make_request());
          }
          const Result<std::vector<net::Response>> results = client.ExecuteBatch(batch);
          if (!results.ok()) {
            break;
          }
          ops += results->size();
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(total_ops.load()) / elapsed / 1000.0;
}

// ------------------------------------------------- many-session generator

// One measurement window over a (subset of a) large session pool.
struct ManySessionOptions {
  size_t active_sessions = 64;    // sessions issuing load; the rest hold open
  size_t pipeline_depth = 8;      // frames per burst (1 = request/response)
  double bursty_fraction = 0.25;  // of active: pause bursty_gap_ms between bursts
  uint32_t bursty_gap_ms = 20;
  double seconds = 1.0;
  double drain_seconds = 5.0;  // post-window budget to collect outstanding acks
  size_t value_bytes = 24;
  size_t key_space = 2048;
};

struct ManySessionResult {
  size_t sessions = 0;  // pool size while the window was open
  uint64_t ops_sent = 0;
  uint64_t ops_acked = 0;
  uint64_t errors = 0;  // session/protocol failures (any is a gate failure)
  double seconds = 0;
  double kops = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// An open-loop generator holding thousands of attested sessions from ONE
// process: blocking parallel handshakes ramp the pool, then a single
// epoll loop drives non-blocking pipelined bursts over an active subset
// while the rest sit idle (the slow-readers-and-lurkers population a
// reactor exists to make cheap). The pool persists across Measure() calls
// so a connections-vs-throughput curve ramps incrementally.
class ManySessionLoad {
 public:
  ManySessionLoad(uint16_t port, const sgx::AttestationAuthority& authority,
                  const sgx::Measurement& measurement, bool encrypt = true,
                  size_t handshake_threads = 4, bool request_tracing = false)
      : port_(port),
        authority_(authority),
        measurement_(measurement),
        encrypt_(encrypt),
        handshake_threads_(std::max<size_t>(handshake_threads, 1)),
        request_tracing_(request_tracing) {}

  ~ManySessionLoad() {
    for (auto& s : pool_) {
      if (s->fd >= 0) {
        ::close(s->fd);
      }
    }
  }

  size_t sessions() const { return pool_.size(); }
  size_t handshake_failures() const { return handshake_failures_; }

  // Grows the pool to `count` sessions. Returns false if the target could
  // not be reached (failures are counted; transient ones are retried as
  // long as rounds keep making progress).
  bool RampTo(size_t count) {
    int stalled_rounds = 0;
    while (pool_.size() < count) {
      const size_t before = pool_.size();
      const size_t missing = count - pool_.size();
      const size_t workers = std::min(handshake_threads_, missing);
      std::mutex mu;
      std::atomic<int64_t> budget{static_cast<int64_t>(missing)};
      std::atomic<size_t> failures{0};
      std::vector<std::thread> threads;
      for (size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&] {
          while (budget.fetch_sub(1, std::memory_order_acq_rel) > 0) {
            auto s = Dial();
            if (s == nullptr) {
              failures.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            std::lock_guard<std::mutex> lock(mu);
            pool_.push_back(std::move(s));
          }
        });
      }
      for (auto& t : threads) {
        t.join();
      }
      handshake_failures_ += failures.load();
      if (pool_.size() == before) {
        if (++stalled_rounds >= 2) {
          return false;  // the server is rejecting/failing: do not spin forever
        }
      } else {
        stalled_rounds = 0;
      }
    }
    return pool_.size() >= count;
  }

  ManySessionResult Measure(const ManySessionOptions& options) {
    ManySessionResult result;
    result.sessions = pool_.size();
    const size_t active = std::min(options.active_sessions, pool_.size());
    if (active == 0) {
      return result;
    }
    const int ep = epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0) {
      result.errors = 1;
      return result;
    }
    // Reset per-session transient state and register every pool member:
    // idle sessions are watched too — an unexpected close is an error.
    const size_t bursty_from =
        active - std::min(active, static_cast<size_t>(active * options.bursty_fraction));
    for (size_t i = 0; i < pool_.size(); ++i) {
      Gen& s = *pool_[i];
      s.outstanding = 0;
      s.next_burst_ns = 0;
      s.send_ns.clear();
      s.out.clear();
      s.out_off = 0;
      s.dead = false;
      s.active = i < active;
      s.bursty = s.active && i >= bursty_from && options.pipeline_depth > 1;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = i;
      epoll_ctl(ep, EPOLL_CTL_ADD, s.fd, &ev);
      s.events = EPOLLIN;
    }

    Xoshiro256 rng(0x6e1c0adULL + pool_.size());
    std::vector<uint64_t> latencies_ns;
    uint64_t sent = 0;
    uint64_t acked = 0;
    uint64_t errors = 0;
    const uint64_t t0 = NowNs();
    const uint64_t window_end = t0 + static_cast<uint64_t>(options.seconds * 1e9);
    const uint64_t drain_end =
        window_end + static_cast<uint64_t>(options.drain_seconds * 1e9);
    bool sending = true;

    // Builds and queues one burst of sealed singleton frames; adjacency is
    // the point — the server coalesces them into one enclave submission.
    auto send_burst = [&](size_t idx) {
      Gen& s = *pool_[idx];
      const uint64_t now = NowNs();
      // One sampled root per burst: overhead measurement at --trace-sample N
      // exercises the real per-root-op sampling path end to end.
      obs::TraceRoot root("netload.burst");
      const obs::TraceContext trace_ctx = obs::CurrentTrace();
      for (size_t d = 0; d < options.pipeline_depth; ++d) {
        net::Request request;
        const uint64_t key_index = rng.NextBelow(options.key_space);
        request.key = "nl-" + std::to_string(key_index);
        if (rng.NextBelow(10) < 5) {
          request.op = net::OpCode::kSet;
          request.value.assign(options.value_bytes, 'v');
        } else {
          request.op = net::OpCode::kGet;
        }
        Bytes plain = net::EncodeRequest(request);
        if (s.tracing && trace_ctx.active()) {
          plain = net::PrependTraceContext(trace_ctx, plain);
        }
        const Bytes record = s.crypto->Seal(plain);
        uint8_t prefix[4];
        StoreLe32(prefix, static_cast<uint32_t>(record.size()));
        s.out.insert(s.out.end(), prefix, prefix + 4);
        s.out.insert(s.out.end(), record.begin(), record.end());
        s.send_ns.push_back(now);
        ++s.outstanding;
        ++sent;
      }
      FlushOut(ep, idx, errors);
    };

    for (size_t i = 0; i < active; ++i) {
      send_burst(i);
    }

    std::vector<epoll_event> events(512);
    uint8_t read_buf[64 * 1024];
    while (true) {
      const uint64_t now = NowNs();
      if (sending && now >= window_end) {
        sending = false;  // stop issuing; drain outstanding acks
      }
      if (!sending) {
        uint64_t outstanding = 0;
        for (size_t i = 0; i < active; ++i) {
          if (!pool_[i]->dead) {
            outstanding += pool_[i]->outstanding;
          }
        }
        if (outstanding == 0 || now >= drain_end) {
          break;
        }
      }
      const int n = epoll_wait(ep, events.data(), static_cast<int>(events.size()), 2);
      for (int e = 0; e < n; ++e) {
        const size_t idx = static_cast<size_t>(events[e].data.u64);
        Gen& s = *pool_[idx];
        if (s.dead) {
          continue;
        }
        if ((events[e].events & EPOLLOUT) != 0) {
          FlushOut(ep, idx, errors);
        }
        if ((events[e].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) == 0) {
          continue;
        }
        bool closed = false;
        while (true) {
          const ssize_t r = recv(s.fd, read_buf, sizeof(read_buf), 0);
          if (r > 0) {
            s.in.insert(s.in.end(), read_buf, read_buf + r);
            if (static_cast<size_t>(r) < sizeof(read_buf)) {
              break;
            }
            continue;
          }
          if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          }
          if (r < 0 && errno == EINTR) {
            continue;
          }
          closed = true;  // EOF or hard error
          break;
        }
        // Parse and open every complete response frame, in order (session
        // crypto sequence numbers demand it).
        size_t off = 0;
        while (s.in.size() - off >= 4) {
          uint32_t len = 0;
          std::memcpy(&len, s.in.data() + off, 4);
          if (s.in.size() - off - 4 < len) {
            break;
          }
          Result<Bytes> plaintext =
              s.crypto->Open(ByteSpan(s.in.data() + off + 4, len));
          off += 4 + len;
          if (!plaintext.ok() || !net::DecodeResponse(*plaintext).ok()) {
            ++errors;
            closed = true;
            break;
          }
          ++acked;
          if (!s.send_ns.empty()) {
            latencies_ns.push_back(NowNs() - s.send_ns.front());
            s.send_ns.pop_front();
          }
          if (s.outstanding > 0) {
            --s.outstanding;
          }
        }
        s.in.erase(s.in.begin(), s.in.begin() + static_cast<long>(off));
        if (closed) {
          // Idle sessions must stay open for the whole window; actives may
          // only close after we stop sending with nothing outstanding.
          if (sending || s.outstanding > 0 || !s.active) {
            ++errors;
          }
          Kill(ep, idx);
          continue;
        }
        if (s.active && sending && s.outstanding == 0 && !s.has_pending_out()) {
          if (s.bursty) {
            s.next_burst_ns = NowNs() + static_cast<uint64_t>(options.bursty_gap_ms) *
                                            1'000'000ull *
                                            (1 + rng.NextBelow(3)) / 2;
          } else {
            send_burst(idx);
          }
        }
      }
      if (sending) {
        for (size_t i = bursty_from; i < active; ++i) {
          Gen& s = *pool_[i];
          if (!s.dead && s.bursty && s.outstanding == 0 && s.next_burst_ns != 0 &&
              NowNs() >= s.next_burst_ns) {
            s.next_burst_ns = 0;
            send_burst(i);
          }
        }
      }
    }

    for (auto& s : pool_) {
      if (!s->dead) {
        epoll_ctl(ep, EPOLL_CTL_DEL, s->fd, nullptr);
      }
    }
    ::close(ep);
    // Dead sessions shrink the pool so the next ramp replaces them.
    pool_.erase(std::remove_if(pool_.begin(), pool_.end(),
                               [](const std::unique_ptr<Gen>& s) { return s->dead; }),
                pool_.end());

    result.ops_sent = sent;
    result.ops_acked = acked;
    result.errors = errors;
    result.seconds = static_cast<double>(window_end - t0) / 1e9;
    result.kops = static_cast<double>(acked) / result.seconds / 1000.0;
    if (!latencies_ns.empty()) {
      std::sort(latencies_ns.begin(), latencies_ns.end());
      result.p50_us =
          static_cast<double>(latencies_ns[latencies_ns.size() / 2]) / 1000.0;
      result.p99_us =
          static_cast<double>(latencies_ns[latencies_ns.size() * 99 / 100]) / 1000.0;
    }
    return result;
  }

 private:
  struct Gen {
    int fd = -1;
    std::unique_ptr<net::SessionCrypto> crypto;
    Bytes in;
    Bytes out;
    size_t out_off = 0;
    std::deque<uint64_t> send_ns;  // FIFO matches in-order responses
    size_t outstanding = 0;
    uint64_t next_burst_ns = 0;
    uint32_t events = EPOLLIN;
    bool active = false;
    bool bursty = false;
    bool tracing = false;  // server granted the trace-propagation capability
    bool dead = false;
    bool has_pending_out() const { return out_off < out.size(); }
  };

  static uint64_t NowNs() {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count());
  }

  std::unique_ptr<Gen> Dial() {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return nullptr;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    timeval tv{};
    tv.tv_sec = 10;  // handshakes queue behind each other on small machines
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    net::ClientHandshakeOptions hopts;
    hopts.request_tracing = request_tracing_;
    Result<net::ClientHandshakeResult> hs =
        net::ClientHandshakeEx(fd, authority_, measurement_, hopts);
    if (!hs.ok()) {
      ::close(fd);
      return nullptr;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    auto s = std::make_unique<Gen>();
    s->fd = fd;
    s->tracing = hs->tracing;
    s->crypto = std::make_unique<net::SessionCrypto>(hs->key_material,
                                                     /*is_client=*/true, encrypt_);
    return s;
  }

  // Sends as much pending output as the socket accepts; EPOLLOUT continues.
  void FlushOut(int ep, size_t idx, uint64_t& errors) {
    Gen& s = *pool_[idx];
    while (s.out_off < s.out.size()) {
      const ssize_t n =
          send(s.fd, s.out.data() + s.out_off, s.out.size() - s.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        s.out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ++errors;
      Kill(ep, idx);
      return;
    }
    if (s.out_off == s.out.size()) {
      s.out.clear();
      s.out_off = 0;
    }
    const uint32_t want =
        EPOLLIN | (s.has_pending_out() ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    if (want != s.events) {
      epoll_event ev{};
      ev.events = want;
      ev.data.u64 = idx;
      epoll_ctl(ep, EPOLL_CTL_MOD, s.fd, &ev);
      s.events = want;
    }
  }

  void Kill(int ep, size_t idx) {
    Gen& s = *pool_[idx];
    if (s.dead) {
      return;
    }
    epoll_ctl(ep, EPOLL_CTL_DEL, s.fd, nullptr);
    ::close(s.fd);
    s.fd = -1;
    s.dead = true;
  }

  uint16_t port_;
  const sgx::AttestationAuthority& authority_;
  sgx::Measurement measurement_;
  bool encrypt_;
  size_t handshake_threads_;
  bool request_tracing_ = false;
  size_t handshake_failures_ = 0;
  std::vector<std::unique_ptr<Gen>> pool_;
};

}  // namespace shield::bench

#endif  // SHIELDSTORE_BENCH_NETLOAD_H_
