// Networked load generation (§6.4): C client connections, each pipelining D
// outstanding requests — simulating C x D concurrent users against a server
// on loopback.
#ifndef SHIELDSTORE_BENCH_NETLOAD_H_
#define SHIELDSTORE_BENCH_NETLOAD_H_

#include <atomic>
#include <thread>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/net/client.h"

namespace shield::bench {

struct NetLoadOptions {
  size_t connections = 8;
  size_t pipeline_depth = 16;
  double seconds = 0.4;
  bool encrypt = true;
};

// Returns aggregate Kop/s (ops counted on response receipt).
inline double RunNetworkLoad(uint16_t port, const sgx::AttestationAuthority& authority,
                             const sgx::Measurement& measurement,
                             const workload::WorkloadConfig& config,
                             const workload::DataSet& ds, size_t num_keys,
                             const NetLoadOptions& options) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(authority, measurement, options.encrypt);
      if (!client.Connect(port).ok()) {
        return;
      }
      workload::WorkloadGenerator gen(config, num_keys, 3000 + c);
      uint64_t version = 1;
      auto make_request = [&]() -> net::Request {
        const workload::Op op = gen.Next();
        net::Request request;
        request.key = workload::KeyAt(op.key_index, ds.key_bytes);
        switch (op.kind) {
          case workload::Op::Kind::kGet:
            request.op = net::OpCode::kGet;
            break;
          case workload::Op::Kind::kSet:
            request.op = net::OpCode::kSet;
            request.value = workload::ValueFor(op.key_index, version++, ds.value_bytes);
            break;
          case workload::Op::Kind::kAppend:
            request.op = net::OpCode::kAppend;
            request.value = "app8byte";
            break;
          case workload::Op::Kind::kReadModifyWrite:
            // Read-modify-write over the wire degenerates to an increment-
            // style server-side op; use append as the mutating half.
            request.op = net::OpCode::kAppend;
            request.value = "m";
            break;
        }
        return request;
      };
      size_t in_flight = 0;
      uint64_t ops = 0;
      for (size_t i = 0; i < options.pipeline_depth; ++i) {
        if (client.SendRequest(make_request()).ok()) {
          ++in_flight;
        }
      }
      while (!stop.load(std::memory_order_relaxed) && in_flight > 0) {
        if (!client.ReceiveResponse().ok()) {
          break;
        }
        ++ops;
        if (client.SendRequest(make_request()).ok()) {
          // window stays full
        } else {
          --in_flight;
        }
      }
      // Drain the window.
      while (in_flight > 0 && client.ReceiveResponse().ok()) {
        --in_flight;
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(total_ops.load()) / elapsed / 1000.0;
}

// Batched load: like RunNetworkLoad but each connection packs `depth`
// write-heavy ops into one kBatch frame per round trip (depth 1 sends plain
// single-op frames — the unbatched baseline). Ops are counted per sub-op on
// batch-response receipt, so Kop/s across depths compares the same work.
inline double RunBatchedNetworkLoad(uint16_t port, const sgx::AttestationAuthority& authority,
                                    const sgx::Measurement& measurement,
                                    const workload::DataSet& ds, size_t num_keys,
                                    size_t depth, const NetLoadOptions& options) {
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      net::Client client(authority, measurement, options.encrypt);
      if (!client.Connect(port).ok()) {
        return;
      }
      Xoshiro256 rng(7000 + c);
      uint64_t version = 1;
      uint64_t ops = 0;
      auto make_request = [&]() -> net::Request {
        net::Request request;
        const uint64_t key_index = rng.NextBelow(num_keys);
        request.key = workload::KeyAt(key_index, ds.key_bytes);
        if (rng.NextBelow(10) < 9) {  // write-heavy: 90% sets
          request.op = net::OpCode::kSet;
          request.value = workload::ValueFor(key_index, version++, ds.value_bytes);
        } else {
          request.op = net::OpCode::kGet;
        }
        return request;
      };
      while (!stop.load(std::memory_order_relaxed)) {
        if (depth <= 1) {
          if (!client.Execute(make_request()).ok()) {
            break;
          }
          ++ops;
        } else {
          std::vector<net::Request> batch;
          batch.reserve(depth);
          for (size_t i = 0; i < depth; ++i) {
            batch.push_back(make_request());
          }
          const Result<std::vector<net::Response>> results = client.ExecuteBatch(batch);
          if (!results.ok()) {
            break;
          }
          ops += results->size();
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(total_ops.load()) / elapsed / 1000.0;
}

}  // namespace shield::bench

#endif  // SHIELDSTORE_BENCH_NETLOAD_H_
