// Reactor scalability: connections vs throughput/latency, and the implicit
// pipelined-batching speedup.
//
// One epoll-driven generator process ramps an attested session pool through
// 1 / 100 / 1k / 10k concurrent connections against a reactor server
// (external daemon via --port/--measurement, or a self-hosted stack). At
// each point a small active subset issues pipelined bursts — the rest of the
// pool holds sessions open, the population an event-driven server must make
// nearly free — and the run gates on:
//   (a) zero acked-op loss and zero protocol errors at every point;
//   (b) implicit batching engaged (coalesced-batch counters advanced);
//   (c) no throughput collapse: Kop/s at 1k sessions holds within tolerance
//       of 100 sessions (idle sessions must not tax the reactor);
//   (d) pipelined clients >= 2x singleton request/response throughput
//       (the implicit-batching payoff).
//
// Emits BENCH_netload.json.
#include <sys/resource.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/netload.h"
#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace shield::bench {
namespace {

// Both endpoints may live in this process in self-hosted mode: 10k sessions
// need ~20k+ descriptors. Try to push past the hard limit (root /
// CAP_SYS_RESOURCE allows it), else settle for the hard limit.
void RaiseFdLimit() {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return;
  }
  rlimit want{65536, 65536};
  if (setrlimit(RLIMIT_NOFILE, &want) != 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
  }
}

struct Args {
  uint16_t port = 0;  // 0 = self-hosted
  std::string measurement_hex;
  std::string authority_seed = "dev-authority";
  std::vector<size_t> curve = {1, 100, 1000, 10000};
  double seconds = 1.0;
  std::string out = "BENCH_netload.json";
  bool gates = true;
  uint32_t trace_sample = 0;  // 0 = tracing off; N = sample 1-in-N roots
  // Interleaved tracing-overhead A/B: this many (off, on@1/256) window pairs
  // over the SAME session pool, gated at >= 0.97 throughput ratio. 0 = skip.
  int trace_overhead_pairs = 0;
};

struct Point {
  size_t sessions;
  ManySessionResult r;
};

int Run(Args args) {
  RaiseFdLimit();
  // Session budget from the descriptor limit: self-hosted holds BOTH ends
  // of every connection in this process. Clamp the curve rather than fail
  // mid-ramp — and say so, a clamped curve is not a 10k result.
  rlimit rl{};
  getrlimit(RLIMIT_NOFILE, &rl);
  const size_t fd_budget = static_cast<size_t>(rl.rlim_cur > 128 ? rl.rlim_cur - 128 : 1);
  const size_t session_budget = args.port == 0 ? fd_budget / 2 : fd_budget;
  for (size_t& target : args.curve) {
    if (target > session_budget) {
      std::fprintf(stderr, "note: clamping %zu sessions to %zu (RLIMIT_NOFILE %llu%s)\n",
                   target, session_budget, static_cast<unsigned long long>(rl.rlim_cur),
                   args.port == 0 ? ", self-hosted holds both socket ends" : "");
      target = session_budget;
    }
  }
  args.curve.erase(std::unique(args.curve.begin(), args.curve.end()), args.curve.end());

  // Self-hosted fallback: a full reactor stack in-process, backed by a
  // durable-ack WAL — the discipline where implicit batching pays off most:
  // every singleton Set waits out a group-commit window, while a coalesced
  // run of adjacent frames waits once per touched shard.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("shield_netload_bench_" + std::to_string(getpid())))
                              .string();
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<shieldstore::PartitionedStore> store;
  std::unique_ptr<sgx::SealingService> sealer;
  std::unique_ptr<sgx::MonotonicCounterService> counters;
  std::unique_ptr<shieldstore::WriteAheadStore> wal;
  std::unique_ptr<net::Server> server;
  sgx::AttestationAuthority authority(AsBytes(args.authority_seed));
  sgx::Measurement measurement{};
  uint16_t port = args.port;
  if (port == 0) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    enclave = std::make_unique<sgx::Enclave>(BenchEnclave());
    shieldstore::Options options;
    options.num_buckets = 1 << 13;
    store = std::make_unique<shieldstore::PartitionedStore>(*enclave, options, 2);
    sealer = std::make_unique<sgx::SealingService>(AsBytes("netload-bench"),
                                                   enclave->measurement());
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = dir + "/counters.bin";
    counter_opts.increment_cost_cycles = 0;
    counters = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
    shieldstore::OpLogOptions log_opts;
    log_opts.path = dir + "/wal.log";
    log_opts.group_commit_window_us = 100;
    log_opts.group_commit_ops = 64;
    wal = std::make_unique<shieldstore::WriteAheadStore>(*store, *sealer, *counters,
                                                         log_opts);
    if (!wal->Open().ok()) {
      std::fprintf(stderr, "wal open failed\n");
      std::filesystem::remove_all(dir);
      return 2;
    }
    net::ServerOptions server_options;
    server_options.max_sessions = 16384;
    server = std::make_unique<net::Server>(*enclave, *wal, authority, server_options);
    if (!server->Start().ok()) {
      std::fprintf(stderr, "self-hosted server start failed\n");
      std::filesystem::remove_all(dir);
      return 2;
    }
    port = server->port();
    measurement = enclave->measurement();
  } else {
    const Bytes raw = HexDecode(args.measurement_hex);
    if (raw.size() != measurement.size()) {
      std::fprintf(stderr, "--measurement must be %zu hex bytes\n", measurement.size());
      return 2;
    }
    std::memcpy(measurement.data(), raw.data(), raw.size());
  }

  // Coalescing gate source: server accessors in-process, the STATS verb
  // against a daemon.
  auto coalesced_batches = [&]() -> uint64_t {
    if (server != nullptr) {
      return server->coalesced_batches();
    }
    net::Client stats_client(authority, measurement);
    if (!stats_client.Connect(port).ok()) {
      return 0;
    }
    Result<obs::MetricsSnapshot> snap = stats_client.Stats();
    return snap.ok() ? snap->CounterValue("net.coalesced.batches") : 0;
  };
  const uint64_t coalesced_before = coalesced_batches();

  obs::TraceSetSampleEvery(args.trace_sample);
  ManySessionLoad pool(port, authority, measurement, /*encrypt=*/true,
                       /*handshake_threads=*/4,
                       /*request_tracing=*/args.trace_sample > 0 ||
                           args.trace_overhead_pairs > 0);

  // --- the connections curve: ramp strictly upward so every point means
  // "exactly this many live sessions" -------------------------------------
  Table table("Reactor: sessions vs throughput/latency (epoll generator, "
              "pipelined bursts over an active subset)");
  table.Header({"sessions", "Kop/s", "p50 us", "p99 us", "acked", "lost", "errors"});
  std::vector<Point> points;
  uint64_t lost_total = 0;
  uint64_t errors_total = 0;
  for (size_t target : args.curve) {
    if (!pool.RampTo(target)) {
      std::fprintf(stderr, "ramp to %zu failed (%zu handshake failures, pool %zu)\n",
                   target, pool.handshake_failures(), pool.sessions());
      return 2;
    }
    ManySessionOptions mo;
    mo.active_sessions = std::min<size_t>(target, 64);
    mo.pipeline_depth = 8;
    mo.seconds = args.seconds;
    const ManySessionResult r = pool.Measure(mo);
    const uint64_t lost = r.ops_sent - r.ops_acked;
    lost_total += lost;
    errors_total += r.errors;
    table.Row({std::to_string(r.sessions), Fmt(r.kops), Fmt(r.p50_us), Fmt(r.p99_us),
               std::to_string(r.ops_acked), std::to_string(lost),
               std::to_string(r.errors)});
    points.push_back({target, r});
  }

  // --- gate (d): pipelined vs singleton over the (now fully ramped) pool.
  // Deep bursts amortize syscalls AND enclave submissions; the implicit
  // batching of adjacent frames is what makes depth pay off server-side.
  ManySessionOptions style;
  style.active_sessions = 4;
  style.seconds = args.seconds * 0.5;
  style.bursty_fraction = 0;  // pure profiles for the speedup comparison
  style.pipeline_depth = 1;
  const ManySessionResult singleton = pool.Measure(style);
  style.pipeline_depth = 32;
  const ManySessionResult pipelined = pool.Measure(style);
  const double speedup = singleton.kops > 0 ? pipelined.kops / singleton.kops : 0;
  errors_total += singleton.errors + pipelined.errors;
  lost_total += (singleton.ops_sent - singleton.ops_acked) +
                (pipelined.ops_sent - pipelined.ops_acked);
  const uint64_t coalesced_delta = coalesced_batches() - coalesced_before;

  // --- tracing overhead A/B: interleaved pairs over the same live pool, so
  // machine-level drift hits both sides of every pair equally. Sampling is a
  // runtime knob; with it at 0 the wire bytes are identical to a pre-tracing
  // client, so the ratio isolates exactly what default-rate tracing costs.
  double trace_ratio = -1;
  if (args.trace_overhead_pairs > 0) {
    ManySessionOptions to;
    to.active_sessions = std::min<size_t>(pool.sessions(), 64);
    to.pipeline_depth = 8;
    to.seconds = args.seconds;
    to.bursty_fraction = 0;
    double off_kops = 0;
    double on_kops = 0;
    for (int p = 0; p < args.trace_overhead_pairs; ++p) {
      obs::TraceSetSampleEvery(0);
      const ManySessionResult off = pool.Measure(to);
      obs::TraceSetSampleEvery(256);
      const ManySessionResult on = pool.Measure(to);
      off_kops += off.kops;
      on_kops += on.kops;
      errors_total += off.errors + on.errors;
      lost_total +=
          (off.ops_sent - off.ops_acked) + (on.ops_sent - on.ops_acked);
    }
    obs::TraceSetSampleEvery(args.trace_sample);
    trace_ratio = off_kops > 0 ? on_kops / off_kops : 0;
    std::printf("# tracing off %.1f Kop/s vs 1/256 sampled %.1f Kop/s "
                "(ratio %.3f, gate >= 0.97)\n",
                off_kops / args.trace_overhead_pairs,
                on_kops / args.trace_overhead_pairs, trace_ratio);
  }
  const bool trace_overhead_ok = trace_ratio < 0 || trace_ratio >= 0.97;

  // --- gates -------------------------------------------------------------
  auto kops_at = [&](size_t sessions) -> double {
    for (const Point& p : points) {
      if (p.sessions == sessions) {
        return p.r.kops;
      }
    }
    return -1;
  };
  const double kops_100 = kops_at(100);
  const double kops_1k = kops_at(1000);
  // 0.85x tolerance absorbs single-core scheduling jitter; a reactor that
  // degrades with idle sessions fails by a mile, not by 15%.
  const bool no_collapse =
      kops_100 < 0 || kops_1k < 0 || kops_1k >= 0.85 * kops_100;
  const bool zero_loss = lost_total == 0 && errors_total == 0;
  const bool coalesced_ok = coalesced_delta > 0;
  const bool speedup_ok = speedup >= 2.0;

  std::ostringstream json;
  json << "{\n  \"bench\": \"netload\",\n  \"mode\": \""
       << (server != nullptr ? "self-hosted" : "external-daemon") << "\",\n"
       << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ManySessionResult& r = points[i].r;
    json << "    {\"sessions\": " << r.sessions << ", \"kops\": " << Fmt(r.kops, "%.2f")
         << ", \"p50_us\": " << Fmt(r.p50_us, "%.1f")
         << ", \"p99_us\": " << Fmt(r.p99_us, "%.1f") << ", \"sent\": " << r.ops_sent
         << ", \"acked\": " << r.ops_acked << ", \"errors\": " << r.errors << "}"
         << (i + 1 < points.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"singleton_kops\": " << Fmt(singleton.kops, "%.2f") << ",\n"
       << "  \"pipelined_kops\": " << Fmt(pipelined.kops, "%.2f") << ",\n"
       << "  \"pipeline_speedup\": " << Fmt(speedup, "%.2f") << ",\n"
       << "  \"coalesced_batches\": " << coalesced_delta << ",\n"
       << "  \"lost_ops\": " << lost_total << ",\n"
       << "  \"errors\": " << errors_total << ",\n"
       << "  \"trace_overhead_ratio\": " << Fmt(trace_ratio, "%.3f") << ",\n"
       << "  \"gates\": {\"zero_loss\": " << (zero_loss ? "true" : "false")
       << ", \"coalescing_engaged\": " << (coalesced_ok ? "true" : "false")
       << ", \"no_collapse\": " << (no_collapse ? "true" : "false")
       << ", \"pipeline_2x\": " << (speedup_ok ? "true" : "false")
       << ", \"trace_overhead\": " << (trace_overhead_ok ? "true" : "false")
       << "}\n}\n";
  std::ofstream(args.out) << json.str();

  std::printf("# pipelined %.1f Kop/s vs singleton %.1f Kop/s (%.2fx, target >= 2x)\n",
              pipelined.kops, singleton.kops, speedup);
  std::printf("# coalesced batches: %llu, lost ops: %llu, errors: %llu\n",
              static_cast<unsigned long long>(coalesced_delta),
              static_cast<unsigned long long>(lost_total),
              static_cast<unsigned long long>(errors_total));
  std::printf("# wrote %s\n", args.out.c_str());

  if (server != nullptr) {
    server->Stop();
    wal.reset();
    std::filesystem::remove_all(dir);
  }
  // The trace-overhead gate only runs when explicitly requested, so enforce
  // it even under --no-gates (check.sh disables the generic gates to keep
  // the overhead stage focused).
  if (!trace_overhead_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: tracing at 1/256 cost more than 3%% throughput "
                 "(ratio %.3f)\n",
                 trace_ratio);
    return 1;
  }
  if (!args.gates) {
    return 0;
  }
  int rc = 0;
  if (!zero_loss) {
    std::fprintf(stderr, "GATE FAILED: acked-op loss or protocol errors\n");
    rc = 1;
  }
  if (!coalesced_ok) {
    std::fprintf(stderr, "GATE FAILED: implicit batching never engaged\n");
    rc = 1;
  }
  if (!no_collapse) {
    std::fprintf(stderr, "GATE FAILED: throughput collapsed from 100 to 1k sessions\n");
    rc = 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "GATE FAILED: pipelined < 2x singleton throughput\n");
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace shield::bench

int main(int argc, char** argv) {
  shield::bench::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* v = next();
      if (v != nullptr) args.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--measurement") {
      const char* v = next();
      if (v != nullptr) args.measurement_hex = v;
    } else if (arg == "--authority-seed") {
      const char* v = next();
      if (v != nullptr) args.authority_seed = v;
    } else if (arg == "--seconds") {
      const char* v = next();
      if (v != nullptr) args.seconds = std::atof(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v != nullptr) args.out = v;
    } else if (arg == "--sessions") {
      const char* v = next();
      if (v != nullptr) {
        args.curve.clear();
        std::stringstream ss(v);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          args.curve.push_back(static_cast<size_t>(std::atoll(tok.c_str())));
        }
      }
    } else if (arg == "--smoke") {
      args.seconds = 0.2;
      args.curve = {1, 100};
    } else if (arg == "--no-gates") {
      args.gates = false;
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v != nullptr) args.trace_sample = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--trace-overhead") {
      const char* v = next();
      if (v != nullptr) args.trace_overhead_pairs = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: bench_netload [--port N --measurement HEX64] "
                   "[--authority-seed S] [--sessions 1,100,1000,10000] "
                   "[--seconds S] [--out PATH] [--smoke] [--no-gates] "
                   "[--trace-sample N] [--trace-overhead PAIRS]\n");
      return 2;
    }
  }
  if (const char* env = std::getenv("SHIELD_NETLOAD_TRACE_SAMPLE");
      env != nullptr && args.trace_sample == 0) {
    args.trace_sample = static_cast<uint32_t>(std::atoi(env));
  }
  if (args.port != 0 && args.measurement_hex.empty()) {
    std::fprintf(stderr, "--port requires --measurement\n");
    return 2;
  }
  return shield::bench::Run(args);
}
