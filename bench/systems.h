// System-under-test factories for the multi-system figures (10-13, 16-18):
// each system bundles its own enclave, store, threading model, and a Run()
// method implementing the appropriate execution style (partition-owned
// threads for the partitioned stores, shared-store threads for memcached).
#ifndef SHIELDSTORE_BENCH_SYSTEMS_H_
#define SHIELDSTORE_BENCH_SYSTEMS_H_

#include <memory>
#include <string>

#include "bench/harness.h"
#include "src/baseline/baseline_store.h"
#include "src/baseline/memcached_like.h"
#include "src/eleos/eleos_kv.h"
#include "src/kv/partition.h"
#include "src/shieldstore/partitioned.h"

namespace shield::bench {

class System {
 public:
  virtual ~System() = default;
  virtual std::string name() const = 0;
  // Thread-safe store facade (used for preloading and the network server).
  virtual kv::KeyValueStore& store() = 0;
  // Runs the workload in this system's native threading model.
  virtual RunResult Run(const workload::WorkloadConfig& config, const workload::DataSet& ds,
                        size_t num_keys, double seconds) = 0;
  virtual sgx::Enclave* enclave() { return nullptr; }
};

// ShieldStore variants of Figure 14 / §6.1's configurations.
inline shieldstore::Options ShieldBaseOptions(size_t num_buckets) {
  shieldstore::Options o;
  o.num_buckets = num_buckets;
  o.key_hint = false;
  o.mac_bucketing = false;
  o.extra_heap = false;
  return o;
}

inline shieldstore::Options ShieldOptOptions(size_t num_buckets) {
  shieldstore::Options o;
  o.num_buckets = num_buckets;
  return o;
}

// Zero-cost enclave configuration for the insecure comparison rows: the
// networked server still routes requests through Boundary::Ecall, which must
// be free when simulating a plain (non-SGX) deployment.
inline sgx::EnclaveConfig InsecureEnclave() {
  sgx::EnclaveConfig c = BenchEnclave();
  c.epc.crossing_cycles = 0;
  c.epc.kernel_fault_cycles = 0;
  c.epc.resident_access_cycles = 0;
  c.epc.page_crypto = false;
  return c;
}

// Factories. `threads` fixes the partition/worker count for the run. When
// `model_contention` is true (standalone simulated-multicore benches) the
// serialized resources charge `threads`-way virtual contention; the
// networked benches use real threads and pass false.
std::unique_ptr<System> MakeShieldSystem(std::string name, const shieldstore::Options& options,
                                         size_t threads,
                                         const sgx::EnclaveConfig& enclave_cfg = BenchEnclave(),
                                         bool model_contention = true);
std::unique_ptr<System> MakeBaselineSystem(bool sgx, size_t num_buckets, size_t threads,
                                           const sgx::EnclaveConfig& enclave_cfg = BenchEnclave(),
                                           bool model_contention = true);
std::unique_ptr<System> MakeMemcachedSystem(bool graphene, size_t num_buckets, size_t threads,
                                            const sgx::EnclaveConfig& enclave_cfg = BenchEnclave(),
                                            bool model_contention = true);
std::unique_ptr<System> MakeEleosSystem(const eleos::SuvmConfig& suvm, size_t num_buckets,
                                        const sgx::EnclaveConfig& enclave_cfg = BenchEnclave());

}  // namespace shield::bench

#endif  // SHIELDSTORE_BENCH_SYSTEMS_H_
