// Ablation: why the paper FLATTENS the Merkle tree (§4.3).
//
// Compares per-update/per-verify cost of (a) a full binary Merkle tree over
// per-bucket hashes vs (b) ShieldStore's flattened one-level MAC-hash array,
// as the bucket count grows. The full tree pays O(log n) hashes per update
// with pointer-chased nodes; the flattened design pays one CMAC over the
// bucket set. The paper's claim: "the height of the Merkle tree can be
// increased excessively for a large number of key-value pairs".
#include "bench/harness.h"
#include "src/crypto/merkle.h"
#include "src/crypto/cmac.h"

namespace shield::bench {
namespace {

volatile uint8_t benchmark_sink_;

void Run() {
  Table table("Ablation: full Merkle tree vs flattened MAC hashes (per-update cost, ns)");
  table.Header({"buckets", "tree height", "full tree", "flattened", "speedup"});

  crypto::Drbg drbg(AsBytes("merkle-ablation"));
  for (size_t buckets : {1u << 10, 1u << 14, 1u << 18, 1u << 20}) {
    crypto::MerkleTree tree(buckets);
    const size_t iters = 2000;

    // Full tree: update a random leaf (the per-bucket hash changed).
    Xoshiro256 rng(7);
    crypto::Sha256Digest leaf{};
    const uint64_t t0 = ReadCycleCounter();
    for (size_t i = 0; i < iters; ++i) {
      leaf[0] = static_cast<uint8_t>(i);
      tree.UpdateLeaf(rng.NextBelow(buckets), leaf);
    }
    const double tree_ns = CyclesToNanoseconds(ReadCycleCounter() - t0) / iters;

    // Flattened: recompute one bucket-set MAC (CMAC over the ~1.25 entry
    // MACs of an average bucket + the set index, as ShieldStore does).
    uint8_t macs[2][16] = {{1}, {2}};
    const uint8_t key[16] = {9};
    const uint64_t t1 = ReadCycleCounter();
    for (size_t i = 0; i < iters; ++i) {
      crypto::Cmac cmac(ByteSpan(key, 16));
      uint8_t index[8];
      StoreLe64(index, i);
      cmac.Update(ByteSpan(index, 8));
      cmac.Update(ByteSpan(&macs[0][0], 32));
      benchmark_sink_ = cmac.Finalize()[0];
    }
    const double flat_ns = CyclesToNanoseconds(ReadCycleCounter() - t1) / iters;

    size_t height = 0;
    for (size_t n = buckets; n > 1; n >>= 1) {
      ++height;
    }
    table.Row({std::to_string(buckets), std::to_string(height), Fmt(tree_ns), Fmt(flat_ns),
               Fmt(tree_ns / std::max(flat_ns, 1e-9), "%.1fx")});
  }
  std::printf("# The full tree's per-update cost grows with height (plus EPC pressure from\n"
              "# interior nodes, not charged here); the flattened design is height-free —\n"
              "# the paper's rationale for the one-level scheme.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
