// Figure 11: per-workload throughput with the large data set for
// Memcached+graphene, Baseline, ShieldBase and ShieldOpt.
//
// Paper shape: ~7.3x ShieldBase gain over Baseline on the 50%-set mixes,
// growing to ~11x on read-mostly/read-only mixes.
#include "bench/systems.h"

namespace shield::bench {
namespace {

void Run() {
  // Paper: 10M keys vs ~90 MB EPC (3.5x-58x overcommit across sizes).
  // Scaled: 1.2M keys vs 24 MB EPC keeps even the small set past the EPC.
  const size_t num_keys = Scaled(1'200'000);
  const size_t shield_buckets = Scaled(800'000);  // MAC hashes ~70% of EPC, like the paper
  const workload::DataSet ds = workload::LargeDataSet();

  std::vector<std::unique_ptr<System>> systems;
  systems.push_back(MakeMemcachedSystem(true, num_keys, 1));
  systems.push_back(MakeBaselineSystem(true, num_keys, 1));
  systems.push_back(MakeShieldSystem("ShieldBase", ShieldBaseOptions(shield_buckets), 1));
  systems.push_back(MakeShieldSystem("ShieldOpt", ShieldOptOptions(shield_buckets), 1));
  for (auto& system : systems) {
    Preload(system->store(), num_keys, ds);
  }

  Table table("Figure 11: per-workload throughput (Kop/s), large data set, 1 thread");
  table.Header({"workload", "Mc+graphene", "Baseline", "ShieldBase", "ShieldOpt"});
  for (const workload::WorkloadConfig& config : workload::AllTable2Workloads()) {
    std::vector<std::string> row = {config.name};
    for (auto& system : systems) {
      row.push_back(Fmt(system->Run(config, ds, num_keys, 0.25).Kops()));
    }
    table.Row(row);
  }
  std::printf("# paper: ShieldStore ~7.3x over Baseline on RD50 mixes, ~11x on RD95/RD100.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
