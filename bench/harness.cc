#include "bench/harness.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <mutex>

// glibc: the basename of argv[0], without needing main() plumbing.
extern "C" char* program_invocation_short_name;

namespace shield::bench {

namespace internal {
namespace {

struct JsonTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct JsonReport {
  std::mutex mutex;
  std::vector<JsonTable> tables;
};

JsonReport& Report() {
  static JsonReport* report = new JsonReport();  // leaked: used from atexit
  return *report;
}

void JsonEscape(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

// Cells are preformatted strings; emit the ones that are entirely numeric as
// JSON numbers so downstream tooling can plot without re-parsing.
void JsonCell(std::string& out, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(cell.c_str(), &end);
    if (errno == 0 && end == cell.c_str() + cell.size() && std::isfinite(v)) {
      out.append(cell);
      return;
    }
  }
  JsonEscape(out, cell);
}

void WriteJsonReport() {
  JsonReport& report = Report();
  std::lock_guard<std::mutex> lock(report.mutex);
  if (report.tables.empty()) {
    return;
  }
  std::string name = program_invocation_short_name != nullptr
                         ? program_invocation_short_name
                         : "unknown";
  if (name.rfind("bench_", 0) == 0) {
    name = name.substr(6);
  }
  const char* dir = std::getenv("SHIELD_BENCH_JSON_DIR");
  const std::string path = (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
                           "BENCH_" + name + ".json";
  std::string out = "{\n  \"benchmark\": ";
  JsonEscape(out, name);
  out += ",\n  \"config\": {\"scale\": " + Fmt(Scale(), "%.3f") + "},\n  \"tables\": [\n";
  for (size_t t = 0; t < report.tables.size(); ++t) {
    const JsonTable& table = report.tables[t];
    out += "    {\"title\": ";
    JsonEscape(out, table.title);
    out += ", \"columns\": [";
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (i > 0) out += ", ";
      JsonEscape(out, table.columns[i]);
    }
    out += "], \"rows\": [\n";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      out += "      [";
      for (size_t i = 0; i < table.rows[r].size(); ++i) {
        if (i > 0) out += ", ";
        JsonCell(out, table.rows[r][i]);
      }
      out += r + 1 < table.rows.size() ? "],\n" : "]\n";
    }
    out += t + 1 < report.tables.size() ? "    ]},\n" : "    ]}\n";
  }
  out += "  ]\n}\n";
  if (FILE* f = std::fopen(path.c_str(), "w"); f != nullptr) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("bench json: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench json: cannot write %s\n", path.c_str());
  }
}

}  // namespace

void AppendJsonTable(const std::string& title, const std::vector<std::string>& columns,
                     const std::vector<std::vector<std::string>>& rows) {
  JsonReport& report = Report();
  std::lock_guard<std::mutex> lock(report.mutex);
  if (report.tables.empty()) {
    std::atexit(WriteJsonReport);
  }
  report.tables.push_back(JsonTable{title, columns, rows});
}

}  // namespace internal

bool Preload(kv::KeyValueStore& store, size_t num_keys, const workload::DataSet& ds) {
  for (size_t i = 0; i < num_keys; ++i) {
    const Status s =
        store.Set(workload::KeyAt(i, ds.key_bytes), workload::ValueFor(i, 0, ds.value_bytes));
    if (!s.ok()) {
      return false;
    }
  }
  return true;
}

bool ExecuteOp(kv::KeyValueStore& store, const workload::Op& op, const workload::DataSet& ds,
               uint64_t* version_counter) {
  const std::string key = workload::KeyAt(op.key_index, ds.key_bytes);
  switch (op.kind) {
    case workload::Op::Kind::kGet:
      return store.Get(key).ok();
    case workload::Op::Kind::kSet:
      return store.Set(key, workload::ValueFor(op.key_index, (*version_counter)++,
                                               ds.value_bytes))
          .ok();
    case workload::Op::Kind::kAppend:
      return store.Append(key, "app8byte").ok();
    case workload::Op::Kind::kReadModifyWrite: {
      Result<std::string> value = store.Get(key);
      if (!value.ok()) {
        return false;
      }
      std::string next = std::move(value.value());
      if (!next.empty()) {
        next[0] = static_cast<char>('a' + (*version_counter)++ % 26);
      }
      return store.Set(key, next).ok();
    }
  }
  return false;
}

RunResult RunWorkload(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                      const workload::DataSet& ds, size_t num_keys, double seconds,
                      uint64_t seed) {
  workload::WorkloadGenerator gen(config, num_keys, seed);
  uint64_t version = 1;
  RunResult result;
  obs::Histogram latency;  // local: per-op nanoseconds, no registry traffic
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(seconds));
  for (;;) {
    for (int batch = 0; batch < 64; ++batch) {
      const uint64_t t0 = obs::TimerStart();
      ExecuteOp(store, gen.Next(), ds, &version);
      latency.RecordCycles(obs::TimerStart() - t0);
      ++result.ops;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.latency = latency.Data();
  return result;
}

RunResult RunWorkloadShared(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                            const workload::DataSet& ds, size_t num_keys, size_t threads,
                            double seconds) {
  // Sequential simulated multicore (see harness.h): the store's configured
  // virtual_contention charges the lock serialization each op would see.
  RunResult total;
  for (size_t t = 0; t < threads; ++t) {
    const RunResult r = RunWorkload(store, config, ds, num_keys, seconds, 2000 + t);
    total.ops += r.ops;
    total.seconds = std::max(total.seconds, r.seconds);
  }
  return total;
}

}  // namespace shield::bench
