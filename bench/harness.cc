#include "bench/harness.h"

#include <atomic>

namespace shield::bench {

bool Preload(kv::KeyValueStore& store, size_t num_keys, const workload::DataSet& ds) {
  for (size_t i = 0; i < num_keys; ++i) {
    const Status s =
        store.Set(workload::KeyAt(i, ds.key_bytes), workload::ValueFor(i, 0, ds.value_bytes));
    if (!s.ok()) {
      return false;
    }
  }
  return true;
}

bool ExecuteOp(kv::KeyValueStore& store, const workload::Op& op, const workload::DataSet& ds,
               uint64_t* version_counter) {
  const std::string key = workload::KeyAt(op.key_index, ds.key_bytes);
  switch (op.kind) {
    case workload::Op::Kind::kGet:
      return store.Get(key).ok();
    case workload::Op::Kind::kSet:
      return store.Set(key, workload::ValueFor(op.key_index, (*version_counter)++,
                                               ds.value_bytes))
          .ok();
    case workload::Op::Kind::kAppend:
      return store.Append(key, "app8byte").ok();
    case workload::Op::Kind::kReadModifyWrite: {
      Result<std::string> value = store.Get(key);
      if (!value.ok()) {
        return false;
      }
      std::string next = std::move(value.value());
      if (!next.empty()) {
        next[0] = static_cast<char>('a' + (*version_counter)++ % 26);
      }
      return store.Set(key, next).ok();
    }
  }
  return false;
}

RunResult RunWorkload(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                      const workload::DataSet& ds, size_t num_keys, double seconds,
                      uint64_t seed) {
  workload::WorkloadGenerator gen(config, num_keys, seed);
  uint64_t version = 1;
  RunResult result;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(seconds));
  for (;;) {
    for (int batch = 0; batch < 64; ++batch) {
      ExecuteOp(store, gen.Next(), ds, &version);
      ++result.ops;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

RunResult RunWorkloadShared(kv::KeyValueStore& store, const workload::WorkloadConfig& config,
                            const workload::DataSet& ds, size_t num_keys, size_t threads,
                            double seconds) {
  // Sequential simulated multicore (see harness.h): the store's configured
  // virtual_contention charges the lock serialization each op would see.
  RunResult total;
  for (size_t t = 0; t < threads; ++t) {
    const RunResult r = RunWorkload(store, config, ds, num_keys, seconds, 2000 + t);
    total.ops += r.ops;
    total.seconds = std::max(total.seconds, r.seconds);
  }
  return total;
}

}  // namespace shield::bench
