// Figure 18: networked client/server evaluation — Memcached+graphene,
// Baseline (with HotCalls, as the paper applies HotCalls to the baseline for
// fairness), ShieldOpt, ShieldOpt+HotCalls, Insecure Memcached and Insecure
// Baseline across data sizes at 1 and 4 threads; plus the ±network-crypto
// ablation.
//
// Paper shape (4 threads): ShieldOpt+HotCalls 9-11x over Baseline; ~3.9x
// below Insecure Baseline (vs the secure Baseline's ~40x gap); network
// en/decryption costs ShieldOpt+HotCalls at most ~5-7%.
#include "bench/netload.h"
#include "bench/systems.h"
#include "src/net/server.h"

namespace shield::bench {
namespace {

double ServeAndMeasure(System& system, const sgx::AttestationAuthority& authority,
                       bool use_hotcalls, bool encrypt, size_t threads,
                       const workload::WorkloadConfig& config, const workload::DataSet& ds,
                       size_t num_keys) {
  net::ServerOptions server_options;
  server_options.use_hotcalls = use_hotcalls;
  server_options.enclave_workers = threads;
  server_options.encrypt = encrypt;
  net::Server server(*system.enclave(), system.store(), authority, server_options);
  if (!server.Start().ok()) {
    return 0;
  }
  NetLoadOptions load;
  load.connections = 8;
  load.pipeline_depth = 16;
  load.seconds = 0.4;
  load.encrypt = encrypt;
  const double kops = RunNetworkLoad(server.port(), authority, system.enclave()->measurement(),
                                     config, ds, num_keys, load);
  server.Stop();
  return kops;
}

void Run() {
  const sgx::AttestationAuthority authority(AsBytes("bench-ias"));
  const size_t num_keys = Scaled(300'000);
  const workload::WorkloadConfig config = workload::RD95_Z();

  Table table("Figure 18: networked throughput (Kop/s), RD95_Z, 256 simulated users");
  table.Header({"threads", "dataset", "Mc+graph", "Baseline", "ShieldOpt", "SO+HotCalls",
                "InsecMc", "InsecBase"});

  for (size_t threads : {1u, 4u}) {
    for (const workload::DataSet& ds :
         {workload::SmallDataSet(), workload::MediumDataSet(), workload::LargeDataSet()}) {
      double kops[6] = {};
      for (int s = 0; s < 6; ++s) {
        std::unique_ptr<System> system;
        bool hotcalls = false;
        bool encrypt = true;
        switch (s) {
          case 0:
            system = MakeMemcachedSystem(true, num_keys, threads, BenchEnclave(), false);
            break;
          case 1:  // the paper applies HotCalls to the baseline too
            system = MakeBaselineSystem(true, num_keys, threads, BenchEnclave(), false);
            hotcalls = true;
            break;
          case 2:
            system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(num_keys), threads,
                                      BenchEnclave(), false);
            break;
          case 3:
            system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(num_keys), threads,
                                      BenchEnclave(), false);
            hotcalls = true;
            break;
          case 4:
            system = MakeMemcachedSystem(false, num_keys, threads, InsecureEnclave(), false);
            encrypt = false;
            break;
          case 5:
            system = MakeBaselineSystem(false, num_keys, threads, InsecureEnclave(), false);
            encrypt = false;
            break;
        }
        Preload(system->store(), num_keys, ds);
        kops[s] = ServeAndMeasure(*system, authority, hotcalls, encrypt, threads, config, ds,
                                  num_keys);
      }
      table.Row({std::to_string(threads), ds.name, Fmt(kops[0]), Fmt(kops[1]), Fmt(kops[2]),
                 Fmt(kops[3]), Fmt(kops[4]), Fmt(kops[5])});
    }
  }

  // ±network-crypto ablation (§6.4's last paragraph).
  Table ablation("Figure 18 ablation: session en/decryption cost (large, 4 threads)");
  ablation.Header({"system", "encrypted", "plaintext", "overhead"});
  const workload::DataSet ds = workload::LargeDataSet();
  for (int s = 0; s < 2; ++s) {
    std::string name;
    double with_crypto = 0, without_crypto = 0;
    for (bool encrypt : {true, false}) {
      std::unique_ptr<System> system;
      bool hotcalls = false;
      if (s == 0) {
        system = MakeShieldSystem("ShieldOpt", ShieldOptOptions(num_keys), 4,
                                  BenchEnclave(), false);
        hotcalls = true;
        name = "ShieldOpt+HotCalls";
      } else {
        system = MakeBaselineSystem(true, num_keys, 4, BenchEnclave(), false);
        name = "Baseline";
      }
      Preload(system->store(), num_keys, ds);
      const double kops =
          ServeAndMeasure(*system, authority, hotcalls, encrypt, 4, config, ds, num_keys);
      (encrypt ? with_crypto : without_crypto) = kops;
    }
    ablation.Row({name, Fmt(with_crypto), Fmt(without_crypto),
                  Fmt((without_crypto - with_crypto) / std::max(without_crypto, 1e-9) * 100,
                      "%.1f%%")});
  }
  std::printf("# paper: ShieldOpt+HotCalls 9-11x over Baseline at 4 threads and ~3.9x under\n"
              "# Insecure Baseline; net crypto costs ShieldStore <=7%%, Baseline up to 27%%.\n");
}

}  // namespace
}  // namespace shield::bench

int main() {
  shield::bench::Run();
  return 0;
}
