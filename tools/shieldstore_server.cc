// Standalone ShieldStore server daemon.
//
// Runs the full stack: simulated enclave, partitioned store, attestation
// authority, encrypted network front end, optional periodic snapshots.
//
//   shieldstore_server --port 4555 --partitions 4 --buckets 1048576 \
//       --hotcalls --authority-seed my-deployment
//
// (Snapshot persistence is a single-owner-thread protocol — see
// examples/persistent_store.cpp; this daemon serves volatile data.)
//
// The enclave measurement is printed at startup; clients pass it to
// shieldstore_cli (out-of-band trust anchor, like a release checksum).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/net/server.h"
#include "src/shieldstore/partitioned.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) {
  g_stop = 1;
}

struct Flags {
  uint16_t port = 4555;
  size_t partitions = 2;
  size_t buckets = 1 << 18;
  size_t epc_mb = 64;
  bool hotcalls = false;
  bool plaintext = false;
  std::string authority_seed = "dev-authority";
  std::string enclave_name = "shieldstore-server-v1";
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      flags->port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--partitions") {
      flags->partitions = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--buckets") {
      flags->buckets = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--epc-mb") {
      flags->epc_mb = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--hotcalls") {
      flags->hotcalls = true;
    } else if (arg == "--plaintext") {
      flags->plaintext = true;
    } else if (arg == "--authority-seed") {
      flags->authority_seed = next();
    } else if (arg == "--name") {
      flags->enclave_name = next();
    } else {
      std::fprintf(stderr,
                   "usage: shieldstore_server [--port N] [--partitions N] [--buckets N]\n"
                   "    [--epc-mb N] [--hotcalls] [--plaintext] [--authority-seed S] [--name S]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shield;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  sgx::EnclaveConfig enclave_config;
  enclave_config.name = flags.enclave_name;
  enclave_config.epc.epc_bytes = flags.epc_mb << 20;
  sgx::Enclave enclave(enclave_config);
  sgx::AttestationAuthority authority(AsBytes(flags.authority_seed));

  shieldstore::Options options;
  options.num_buckets = flags.buckets;
  shieldstore::PartitionedStore store(enclave, options, flags.partitions);

  net::ServerOptions server_options;
  server_options.port = flags.port;
  server_options.use_hotcalls = flags.hotcalls;
  server_options.enclave_workers = flags.partitions;
  server_options.encrypt = !flags.plaintext;
  net::Server server(enclave, store, authority, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shieldstore: listening on 127.0.0.1:%u (%s entry, %s)\n", server.port(),
              flags.hotcalls ? "HotCalls" : "ECALL",
              flags.plaintext ? "PLAINTEXT sessions" : "encrypted sessions");
  std::printf("enclave measurement (give to clients): %s\n",
              HexEncode(ByteSpan(enclave.measurement().data(), 32)).c_str());
  std::fflush(stdout);

  // Serve until signalled.
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}
