// Standalone ShieldStore server daemon.
//
// Runs the full stack: simulated enclave, partitioned store, attestation
// authority, encrypted network front end, optional periodic snapshots.
//
//   shieldstore_server --port 4555 --partitions 4 --buckets 1048576 \
//       --hotcalls --authority-seed my-deployment
//
// With --heal-dir the daemon becomes self-healing: every acknowledged
// mutation is write-ahead logged, a baseline snapshot is written at startup,
// a paced background scrub audits the table, and a partition that fails an
// integrity check is quarantined and rebuilt online (snapshot + committed
// log) while the rest of the store keeps serving. Without it the daemon
// serves volatile data, optionally still scrubbed in the background.
//
// The enclave measurement is printed at startup; clients pass it to
// shieldstore_cli (out-of-band trust anchor, like a release checksum).
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>

#include "src/crypto/aes.h"
#include "src/net/server.h"
#include "src/obs/audit.h"
#include "src/obs/snapshot.h"
#include "src/obs/tracer.h"
#include "src/obs/watchdog.h"
#include "src/router/replica.h"
#include "src/router/shipper.h"
#include "src/shieldstore/oplog.h"
#include "src/shieldstore/partitioned.h"
#include "src/shieldstore/selfheal.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) {
  g_stop = 1;
}

struct Flags {
  uint16_t port = 4555;
  size_t partitions = 2;
  size_t buckets = 1 << 18;
  size_t epc_mb = 64;
  bool hotcalls = false;
  bool plaintext = false;
  std::string authority_seed = "dev-authority";
  std::string enclave_name = "shieldstore-server-v1";
  std::string heal_dir;         // empty = volatile (no WAL, no recovery)
  std::string persist_heap;     // mmap-backed untrusted heap dir (needs --heal-dir)
  size_t persist_capacity_mb = 256;  // arena capacity per partition
  int scrub_interval_ms = 50;   // maintenance cadence; 0 disables the scrub
  size_t scrub_budget = 0;      // buckets per tick; 0 = Options default
  size_t wal_shards = 0;        // log shards; 0 = one per partition
  uint32_t wal_window_us = 200;  // group-commit window; 0 = legacy auto-commit
  size_t wal_group_ops = 64;    // records per group commit
  size_t wal_compact_bytes = 64 << 20;  // compact a shard log past this; 0 = never
  int stats_interval_s = 30;    // metrics report cadence; 0 disables
  bool stats_prometheus = false;  // full Prometheus-style dump each report
  std::string stats_json;       // periodic obs::RenderJson dump to this file
  size_t io_threads = 4;        // reactor epoll threads
  size_t max_sessions = 16384;  // live-session cap (excess accepts rejected)
  size_t coalesce_depth = 64;   // implicit pipelined batching; 1 disables
  int hotcall_idle_us = 50;     // idle responder sleep; 0 = legacy pure-spin
  size_t replay_threads = 0;    // parallel shard-log replay; 0 = auto, 1 = sequential
  bool replica = false;         // warm standby: accept a primary's kReplicate stream
  uint16_t replica_of = 0;      // that primary's port — informational (push model)
  uint16_t replicate_to = 0;    // primary: ship committed WAL entries to this follower port
  uint32_t trace_sample = 256;  // sample 1-in-N root ops; 1 = every op, 0 = tracing off
  std::string audit_log;        // hash-chained security audit log; empty = off
  int slo_interval_s = 5;       // SLO watchdog cadence; 0 disables the watchdog
  int slo_stage_p99_ms = 50;    // breach: any stage.* p99 over this
  int slo_op_p99_ms = 200;      // breach: any net.latency.* p99 over this
  int slo_loop_lag_p99_ms = 200;  // breach: reactor loop-lag p99 over this
  long long slo_repl_backlog = 65536;  // breach: replication backlog entries over this
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      flags->port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--partitions") {
      flags->partitions = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--buckets") {
      flags->buckets = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--epc-mb") {
      flags->epc_mb = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--hotcalls") {
      flags->hotcalls = true;
    } else if (arg == "--plaintext") {
      flags->plaintext = true;
    } else if (arg == "--authority-seed") {
      flags->authority_seed = next();
    } else if (arg == "--name") {
      flags->enclave_name = next();
    } else if (arg == "--heal-dir") {
      flags->heal_dir = next();
    } else if (arg == "--persist-heap") {
      flags->persist_heap = next();
    } else if (arg == "--persist-capacity-mb") {
      flags->persist_capacity_mb = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--scrub-interval-ms") {
      flags->scrub_interval_ms = std::atoi(next());
    } else if (arg == "--scrub-budget") {
      flags->scrub_budget = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--wal-shards") {
      flags->wal_shards = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--wal-window-us") {
      flags->wal_window_us = static_cast<uint32_t>(std::atoll(next()));
    } else if (arg == "--wal-group-ops") {
      flags->wal_group_ops = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--wal-compact-bytes") {
      flags->wal_compact_bytes = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--stats-interval-s") {
      flags->stats_interval_s = std::atoi(next());
    } else if (arg == "--stats-prometheus") {
      flags->stats_prometheus = true;
    } else if (arg == "--stats-json") {
      flags->stats_json = next();
    } else if (arg == "--io-threads") {
      flags->io_threads = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--max-sessions") {
      flags->max_sessions = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--coalesce-depth") {
      flags->coalesce_depth = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--hotcall-idle-us") {
      flags->hotcall_idle_us = std::atoi(next());
    } else if (arg == "--replay-threads") {
      flags->replay_threads = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--replica-of") {
      flags->replica = true;
      flags->replica_of = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--replicate-to") {
      flags->replicate_to = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--trace-sample") {
      flags->trace_sample = static_cast<uint32_t>(std::atoll(next()));
    } else if (arg == "--audit-log") {
      flags->audit_log = next();
    } else if (arg == "--slo-interval-s") {
      flags->slo_interval_s = std::atoi(next());
    } else if (arg == "--slo-stage-p99-ms") {
      flags->slo_stage_p99_ms = std::atoi(next());
    } else if (arg == "--slo-op-p99-ms") {
      flags->slo_op_p99_ms = std::atoi(next());
    } else if (arg == "--slo-loop-lag-p99-ms") {
      flags->slo_loop_lag_p99_ms = std::atoi(next());
    } else if (arg == "--slo-repl-backlog") {
      flags->slo_repl_backlog = std::atoll(next());
    } else {
      std::fprintf(stderr,
                   "usage: shieldstore_server [--port N] [--partitions N] [--buckets N]\n"
                   "    [--epc-mb N] [--hotcalls] [--plaintext] [--authority-seed S] [--name S]\n"
                   "    [--heal-dir DIR] [--persist-heap DIR] [--persist-capacity-mb N]\n"
                   "    [--scrub-interval-ms N] [--scrub-budget N]\n"
                   "    [--wal-shards N] [--wal-window-us N] [--wal-group-ops N]\n"
                   "    [--wal-compact-bytes N] [--stats-interval-s N] [--stats-prometheus]\n"
                   "    [--stats-json FILE] [--io-threads N] [--max-sessions N]\n"
                   "    [--coalesce-depth N] [--hotcall-idle-us N] [--replay-threads N]\n"
                   "    [--replica-of PRIMARY_PORT] [--replicate-to FOLLOWER_PORT]\n"
                   "    [--trace-sample N] [--audit-log FILE] [--slo-interval-s N]\n"
                   "    [--slo-stage-p99-ms N] [--slo-op-p99-ms N] [--slo-loop-lag-p99-ms N]\n"
                   "    [--slo-repl-backlog N]\n"
                   "observability: --trace-sample N samples 1-in-N root operations into the\n"
                   "cross-node tracer (1 = every op, 0 = off; dump with `shieldstore_cli\n"
                   "trace`). --audit-log FILE appends every integrity-relevant event to a\n"
                   "hash-chained, fsync'd audit log (verify offline with audit_verify).\n"
                   "--slo-* set the watchdog thresholds; breaches bump slo.breaches and land\n"
                   "in the audit log.\n"
                   "replication: --replica-of makes this node a warm standby (the primary on\n"
                   "PRIMARY_PORT pushes its stream here; the port is recorded for logs).\n"
                   "--replicate-to ships every committed WAL entry to the follower listening\n"
                   "on FOLLOWER_PORT (requires --heal-dir; both nodes must share the binary\n"
                   "and --authority-seed so the sessions attest).\n"
                   "--persist-heap DIR mmaps the untrusted heap onto p<i>.heap files in DIR:\n"
                   "restart attaches the files in O(1) and replays only the WAL tail instead\n"
                   "of decrypting every snapshot entry (requires --heal-dir for the WAL).\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shield;
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Observability plumbing first: events from the very first attach/restore
  // must already land in the audit chain and the tracer.
  obs::TraceSetSampleEvery(flags.trace_sample);
  obs::AuditLog audit_log;
  if (!flags.audit_log.empty()) {
    if (Status s = audit_log.Open(flags.audit_log); !s.ok()) {
      // A refused chain means the existing log failed verification. Starting
      // anyway would silently fork history; make the operator move it aside.
      std::fprintf(stderr, "audit log open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    obs::InstallAuditLog(&audit_log);
  }

  sgx::EnclaveConfig enclave_config;
  enclave_config.name = flags.enclave_name;
  enclave_config.epc.epc_bytes = flags.epc_mb << 20;
  sgx::Enclave enclave(enclave_config);
  sgx::AttestationAuthority authority(AsBytes(flags.authority_seed));

  if (!flags.persist_heap.empty() && flags.heal_dir.empty()) {
    std::fprintf(stderr,
                 "--persist-heap requires --heal-dir: the arena checkpoint is the baseline\n"
                 "but acked-write durability still rides on the WAL tail\n");
    return 2;
  }

  shieldstore::Options options;
  options.num_buckets = flags.buckets;
  if (flags.scrub_budget > 0) {
    options.scrub_budget_buckets = flags.scrub_budget;
  }
  options.persist_dir = flags.persist_heap;
  options.persist_capacity_bytes = std::max<size_t>(flags.persist_capacity_mb, 1) << 20;
  shieldstore::PartitionedStore store(enclave, options, flags.partitions);

  // Self-healing stack (only when --heal-dir names a durable directory).
  std::unique_ptr<sgx::SealingService> sealer;
  std::unique_ptr<sgx::MonotonicCounterService> counters;
  std::unique_ptr<shieldstore::WriteAheadStore> wal;
  std::unique_ptr<shieldstore::SelfHealer> healer;
  if (!flags.heal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(flags.heal_dir, ec);
    sealer = std::make_unique<sgx::SealingService>(AsBytes(flags.authority_seed),
                                                   enclave.measurement());
    sgx::MonotonicCounterService::Options counter_opts;
    counter_opts.backing_file = flags.heal_dir + "/counters.bin";
    counters = std::make_unique<sgx::MonotonicCounterService>(counter_opts);
    shieldstore::OpLogOptions log_opts;
    log_opts.path = flags.heal_dir + "/wal.log";
    log_opts.num_shards = flags.wal_shards;
    log_opts.group_commit_window_us = flags.wal_window_us;
    log_opts.group_commit_ops = std::max<size_t>(flags.wal_group_ops, 1);
    log_opts.replay_threads = flags.replay_threads;
    wal = std::make_unique<shieldstore::WriteAheadStore>(store, *sealer, *counters, log_opts);
    if (Status s = wal->Open(); !s.ok()) {
      std::fprintf(stderr, "oplog open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    shieldstore::SelfHealOptions heal_opts;
    heal_opts.directory = flags.heal_dir + "/snapshots";
    heal_opts.scrub = flags.scrub_interval_ms > 0;
    heal_opts.compact_log_bytes = flags.wal_compact_bytes;
    healer = std::make_unique<shieldstore::SelfHealer>(*wal, *sealer, *counters, heal_opts);
    // Restore the previous run's durable state (baseline snapshots + the
    // committed suffix of every shard log) into the empty store before
    // Start() rebaselines it. Replayed ops go straight to the inner store so
    // they are not re-logged.
    const auto restore_start = std::chrono::steady_clock::now();
    if (Status s = healer->Restore(); !s.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto restore_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - restore_start)
                                .count();
    if (store.Size() > 0) {
      std::printf("self-healing: restored %zu keys from %s\n", store.Size(),
                  flags.heal_dir.c_str());
    }
    if (store.persist_enabled()) {
      std::printf("persistent heap: attached %zu keys from %s in %.2f ms "
                  "(entry MACs re-verify lazily)\n",
                  store.Size(), flags.persist_heap.c_str(),
                  static_cast<double>(restore_ns) / 1e6);
    }
    if (Status s = healer->Start(); !s.ok()) {
      std::fprintf(stderr, "baseline snapshot failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (flags.replicate_to != 0 && wal == nullptr) {
    std::fprintf(stderr, "--replicate-to requires --heal-dir (replication ships the WAL)\n");
    return 2;
  }

  // Warm standby: the primary's WalShipper pushes kReplicate frames at us;
  // they apply through the SAME facade clients would write through, so a
  // follower with --heal-dir re-logs every replicated entry into its own WAL
  // and is itself durable (and promotable) state.
  std::unique_ptr<router::ReplicaNode> replica;
  if (flags.replica) {
    replica = std::make_unique<router::ReplicaNode>(
        wal != nullptr ? static_cast<kv::KeyValueStore&>(*wal)
                       : static_cast<kv::KeyValueStore&>(store));
  }

  // Set after the Server is constructed; the maintenance lambda (created
  // first) reads it to fold batch stats into the periodic report.
  net::Server* server_ref = nullptr;
  net::ServerOptions server_options;
  if (replica != nullptr) {
    server_options.replicate_handler = [&replica](const net::Request& request) {
      return replica->HandleReplicate(request);
    };
  }
  server_options.port = flags.port;
  server_options.use_hotcalls = flags.hotcalls;
  server_options.enclave_workers = flags.partitions;
  server_options.encrypt = !flags.plaintext;
  server_options.hotcall_idle_sleep_us = flags.hotcall_idle_us;
  server_options.io_threads = std::max<size_t>(flags.io_threads, 1);
  server_options.max_sessions = std::max<size_t>(flags.max_sessions, 1);
  server_options.coalesce_depth = std::max<size_t>(flags.coalesce_depth, 1);
  // Fold component-level stats (partition health, WAL, self-heal) into every
  // kStats snapshot the server builds. The net layer knows nothing about the
  // shieldstore stack; this hook is the bridge.
  server_options.stats_augment = [&store, &wal, &healer](obs::MetricsSnapshot& snap) {
    store.BridgeStats(snap);
    if (wal != nullptr) {
      wal->BridgeStats(snap);
    }
    if (healer != nullptr) {
      healer->BridgeStats(snap);
    }
  };
  // Periodic metrics report: rates over the last interval from obs::Delta,
  // plus cumulative WAL/batch context. Works in both heal and volatile mode.
  auto last_snap = std::make_shared<obs::MetricsSnapshot>();
  auto report_stats = [&server_ref, last_snap, prometheus = flags.stats_prometheus,
                       json_path = flags.stats_json] {
    net::Server* srv = server_ref;
    if (srv == nullptr) {
      return;
    }
    obs::MetricsSnapshot now = srv->BuildStatsSnapshot();
    if (!json_path.empty()) {
      // Machine-readable dump for scrapers: written whole, then renamed, so
      // a reader never sees a torn file.
      const std::string tmp = json_path + ".tmp";
      if (FILE* f = std::fopen(tmp.c_str(), "wb"); f != nullptr) {
        const std::string json = obs::RenderJson(now);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::rename(tmp.c_str(), json_path.c_str());
      }
    }
    const obs::MetricsSnapshot d = obs::Delta(*last_snap, now);
    const double secs =
        last_snap->unix_nanos > 0 && d.unix_nanos > 0 ? static_cast<double>(d.unix_nanos) / 1e9 : 0.0;
    const uint64_t req = d.CounterValue("net.requests");
    std::printf("stats: %llu req (%.1f/s) | get %llu set %llu batch %llu (%llu sub-ops) | inflight %lld",
                static_cast<unsigned long long>(req), secs > 0 ? static_cast<double>(req) / secs : 0.0,
                static_cast<unsigned long long>(d.CounterValue("net.ops.get")),
                static_cast<unsigned long long>(d.CounterValue("net.ops.set")),
                static_cast<unsigned long long>(d.CounterValue("net.ops.batch")),
                static_cast<unsigned long long>(d.CounterValue("net.batch_ops")),
                static_cast<long long>(now.GaugeValue("net.inflight")));
    if (const obs::HistogramData* h = d.Histogram("net.latency.get"); h != nullptr && h->count > 0) {
      std::printf(" | get p50/p95/p99 %.0f/%.0f/%.0f us", h->Quantile(0.50) / 1e3,
                  h->Quantile(0.95) / 1e3, h->Quantile(0.99) / 1e3);
    }
    std::printf("\n");
    if (now.Has("wal.records")) {
      std::printf("wal: %llu records, %llu commits, %llu fsyncs, %llu compactions, "
                  "%llu log bytes over %lld shards\n",
                  static_cast<unsigned long long>(now.CounterValue("wal.records")),
                  static_cast<unsigned long long>(now.CounterValue("wal.commits")),
                  static_cast<unsigned long long>(now.CounterValue("wal.fsyncs")),
                  static_cast<unsigned long long>(now.CounterValue("wal.compactions")),
                  static_cast<unsigned long long>(now.GaugeValue("wal.log_bytes")),
                  static_cast<long long>(now.GaugeValue("wal.shards")));
    }
    if (prometheus) {
      std::fputs(obs::RenderPrometheus(now).c_str(), stdout);
    }
    std::fflush(stdout);
    *last_snap = std::move(now);
  };
  // SLO watchdog: evaluated from the maintenance thread over registry deltas.
  // Breaches bump slo.breaches and land in the audit chain (kSloBreach).
  std::shared_ptr<obs::SloWatchdog> watchdog;
  if (flags.slo_interval_s > 0) {
    obs::SloThresholds thresholds;
    thresholds.stage_p99_ns = static_cast<uint64_t>(std::max(flags.slo_stage_p99_ms, 1)) * 1000000ull;
    thresholds.op_p99_ns = static_cast<uint64_t>(std::max(flags.slo_op_p99_ms, 1)) * 1000000ull;
    thresholds.loop_lag_p99_ns =
        static_cast<uint64_t>(std::max(flags.slo_loop_lag_p99_ms, 1)) * 1000000ull;
    thresholds.repl_backlog_entries = std::max<int64_t>(flags.slo_repl_backlog, 1);
    watchdog = std::make_shared<obs::SloWatchdog>(thresholds);
  }
  auto slo_tick = [&server_ref, watchdog] {
    if (watchdog != nullptr && server_ref != nullptr) {
      watchdog->Evaluate(server_ref->BuildStatsSnapshot());
    }
  };
  const bool want_stats = flags.stats_interval_s > 0;
  const bool want_slo = watchdog != nullptr;
  if (healer != nullptr) {
    const int interval_ms = std::max(flags.scrub_interval_ms, 1);
    const uint64_t stats_every =
        want_stats
            ? std::max<uint64_t>(uint64_t{1000} * flags.stats_interval_s / interval_ms, 1)
            : 0;
    const uint64_t slo_every =
        want_slo ? std::max<uint64_t>(uint64_t{1000} * flags.slo_interval_s / interval_ms, 1)
                 : 0;
    auto ticks = std::make_shared<uint64_t>(0);
    server_options.maintenance = [&healer, stats_every, slo_every, ticks, report_stats,
                                  slo_tick] {
      healer->Tick();
      ++*ticks;
      if (stats_every > 0 && *ticks % stats_every == 0) {
        report_stats();
      }
      if (slo_every > 0 && *ticks % slo_every == 0) {
        slo_tick();
      }
    };
    server_options.maintenance_interval_ms = interval_ms;
  } else if (flags.scrub_interval_ms > 0 || want_stats || want_slo) {
    // Volatile mode: still audit in the background. A violation quarantines
    // the partition (typed errors for its keys) — without a WAL there is
    // nothing to heal from, so it stays quarantined. The maintenance thread
    // doubles as the stats reporter and SLO watchdog (and runs for those
    // alone if the scrub is disabled).
    const bool scrub = flags.scrub_interval_ms > 0;
    const int interval_ms = scrub ? flags.scrub_interval_ms : 1000;
    const uint64_t stats_every =
        want_stats
            ? std::max<uint64_t>(uint64_t{1000} * flags.stats_interval_s / interval_ms, 1)
            : 0;
    const uint64_t slo_every =
        want_slo ? std::max<uint64_t>(uint64_t{1000} * flags.slo_interval_s / interval_ms, 1)
                 : 0;
    auto ticks = std::make_shared<uint64_t>(0);
    server_options.maintenance = [&store, scrub, stats_every, slo_every, ticks, report_stats,
                                  slo_tick] {
      if (scrub) {
        (void)store.ScrubTick();
      }
      ++*ticks;
      if (stats_every > 0 && *ticks % stats_every == 0) {
        report_stats();
      }
      if (slo_every > 0 && *ticks % slo_every == 0) {
        slo_tick();
      }
    };
    server_options.maintenance_interval_ms = interval_ms;
  }
  net::Server server(enclave, wal != nullptr ? static_cast<kv::KeyValueStore&>(*wal)
                                             : static_cast<kv::KeyValueStore&>(store),
                     authority, server_options);
  server_ref = &server;
  *last_snap = server.BuildStatsSnapshot();  // rate baseline for the first report

  // Primary half of replication. Install the sink BEFORE Attach() so entries
  // committed during the bootstrap dump are backlogged, not lost. A failed
  // attach (follower still booting) is not fatal: the commit path keeps
  // retrying the connection and the follower forces a bootstrap on contact.
  std::unique_ptr<router::WalShipper> shipper;
  if (flags.replicate_to != 0) {
    router::ShipperOptions ship_opts;
    ship_opts.follower_port = flags.replicate_to;
    ship_opts.encrypt = !flags.plaintext;
    // Epoch must change across primary restarts so a follower never merges
    // two primary lifetimes into one stream.
    ship_opts.epoch = (static_cast<uint64_t>(std::time(nullptr)) << 16) ^
                      static_cast<uint64_t>(getpid());
    if (ship_opts.epoch == 0) {
      ship_opts.epoch = 1;
    }
    ship_opts.attach_attempts = 50;
    // Thread trace contexts through the replication stream: a sampled
    // mutation's trace follows its WAL records onto the follower.
    ship_opts.client.enable_tracing = flags.trace_sample > 0;
    shipper = std::make_unique<router::WalShipper>(*wal, authority, enclave.measurement(),
                                                   ship_opts);
    wal->SetReplicationSink(shipper.get());
    if (Status s = shipper->Attach(); !s.ok()) {
      std::fprintf(stderr, "replication attach deferred: %s (commit path will retry)\n",
                   s.ToString().c_str());
    }
  }

  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shieldstore: listening on 127.0.0.1:%u (%s entry, %s)\n", server.port(),
              flags.hotcalls ? "HotCalls" : "ECALL",
              flags.plaintext ? "PLAINTEXT sessions" : "encrypted sessions");
  std::printf("enclave measurement (give to clients): %s\n",
              HexEncode(ByteSpan(enclave.measurement().data(), 32)).c_str());
  std::printf("reactor: %zu io threads, %zu max sessions, coalesce depth %zu\n",
              server_options.io_threads, server_options.max_sessions,
              server_options.coalesce_depth);
  std::printf("crypto: %s backend (aes-ni %s)\n",
              crypto::AesBackendName(crypto::Aes128::Backend()),
              crypto::AesNiAvailable() ? "available" : "unavailable");
  if (flags.trace_sample > 0) {
    std::printf("tracing: sampling 1-in-%u root ops (drain with `shieldstore_cli trace`)\n",
                flags.trace_sample);
  }
  if (audit_log.is_open()) {
    std::printf("audit: hash-chained log at %s (%llu records so far)\n",
                flags.audit_log.c_str(),
                static_cast<unsigned long long>(audit_log.records_written()));
  }
  if (watchdog != nullptr) {
    std::printf("slo watchdog: every %d s (stage p99 %d ms, op p99 %d ms, loop lag p99 %d ms, "
                "repl backlog %lld)\n",
                flags.slo_interval_s, flags.slo_stage_p99_ms, flags.slo_op_p99_ms,
                flags.slo_loop_lag_p99_ms, flags.slo_repl_backlog);
  }
  if (healer != nullptr) {
    std::printf("self-healing: on (dir %s, scrub every %d ms)\n", flags.heal_dir.c_str(),
                flags.scrub_interval_ms);
    std::printf("wal: %zu shards, %u us group-commit window, %zu ops/group, compact at %zu bytes\n",
                wal->num_shards(), flags.wal_window_us, flags.wal_group_ops,
                flags.wal_compact_bytes);
    if (store.persist_enabled()) {
      std::printf("persistent heap: %s (%zu MB per partition, %zu partitions)\n",
                  flags.persist_heap.c_str(), flags.persist_capacity_mb, flags.partitions);
    }
  } else if (flags.scrub_interval_ms > 0) {
    std::printf("self-healing: off (background scrub every %d ms)\n", flags.scrub_interval_ms);
  }
  if (replica != nullptr) {
    std::printf("replication: warm standby for primary on port %u (kPromote flips to primary)\n",
                flags.replica_of);
  }
  if (shipper != nullptr) {
    std::printf("replication: shipping committed WAL entries to follower on port %u (%s)\n",
                flags.replicate_to, shipper->connected() ? "attached" : "attach pending");
  }
  std::fflush(stdout);

  // Serve until signalled.
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  if (shipper != nullptr) {
    // Detach before the shipper is destroyed (it dies before the WAL).
    wal->SetReplicationSink(nullptr);
    std::printf("replication: %zu entries still backlogged at shutdown\n",
                shipper->backlog_entries());
  }
  // Batching observability alongside the WAL stats: how much boundary work
  // the multi-op frames amortized away.
  const uint64_t batches = server.batches_served();
  const uint64_t batch_ops = server.batch_ops_served();
  std::printf("batch: %llu batches, %llu sub-ops (mean %.1f/batch), %llu crossings saved\n",
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(batch_ops),
              batches > 0 ? static_cast<double>(batch_ops) / static_cast<double>(batches) : 0.0,
              static_cast<unsigned long long>(server.crossings_saved()));
  std::printf("implicit batching: %llu coalesced runs, %llu pipelined frames\n",
              static_cast<unsigned long long>(server.coalesced_batches()),
              static_cast<unsigned long long>(server.coalesced_ops()));
  if (healer != nullptr) {
    std::printf("self-healing: %llu recoveries, %llu violations detected\n",
                static_cast<unsigned long long>(healer->recoveries()),
                static_cast<unsigned long long>(healer->violations_detected()));
    const shieldstore::WalStats ws = wal->Stats();
    std::printf(
        "wal: %llu records, %llu commits, %llu fsyncs, %llu compactions, "
        "%llu log bytes over %zu shards\n",
        static_cast<unsigned long long>(ws.records_logged),
        static_cast<unsigned long long>(ws.commits),
        static_cast<unsigned long long>(ws.fsyncs),
        static_cast<unsigned long long>(ws.compactions),
        static_cast<unsigned long long>(ws.log_bytes), ws.shards);
  }
  return 0;
}
