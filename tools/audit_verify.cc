// Offline verifier for hash-chained audit logs (src/obs/audit.h).
//
// Usage: audit_verify [--quiet] FILE...
//
// Walks each file's chain front to back, re-deriving every SHA-256 link.
// Exit 0 iff every file verifies; any flipped byte, rewritten record,
// truncation, or trailing garbage exits 1 with the offending byte offset.
// Needs no enclave secret: the chain protects ordering and integrity, so
// anyone holding the file can audit it.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/audit.h"

using shield::Status;
using shield::obs::AuditChainSummary;
using shield::obs::AuditRecord;
using shield::obs::AuditTypeName;
using shield::obs::VerifyAuditFile;

namespace {

void PrintRecords(const std::vector<AuditRecord>& records) {
  for (const AuditRecord& r : records) {
    std::printf("  #%-6" PRIu64 " %-18s t=%" PRIu64 "ns  %s\n", r.seq,
                AuditTypeName(static_cast<shield::obs::AuditType>(r.type)),
                r.unix_nanos, r.detail.c_str());
  }
}

void PrintDigest(const unsigned char* d, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    std::printf("%02x", d[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: audit_verify [--quiet] FILE...\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: audit_verify [--quiet] FILE...\n");
    return 2;
  }

  int rc = 0;
  for (const std::string& path : paths) {
    AuditChainSummary summary;
    std::vector<AuditRecord> records;
    const Status s = VerifyAuditFile(path, &summary, quiet ? nullptr : &records);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: CHAIN BROKEN: %s\n", path.c_str(),
                   s.ToString().c_str());
      rc = 1;
      continue;
    }
    std::printf("%s: OK, %" PRIu64 " records, head ", path.c_str(),
                summary.records);
    PrintDigest(summary.head.data(), summary.head.size());
    std::printf("\n");
    if (!quiet) {
      PrintRecords(records);
    }
  }
  return rc;
}
