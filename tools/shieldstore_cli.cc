// Command-line client for a shieldstore_server instance.
//
//   shieldstore_cli --port 4555 --measurement <hex from the server> \
//       set mykey myvalue
//   shieldstore_cli --port 4555 --measurement <hex> get mykey
//   shieldstore_cli --port 4555 --measurement <hex> append mykey ",more"
//   shieldstore_cli --port 4555 --measurement <hex> incr counter 5
//   shieldstore_cli --port 4555 --measurement <hex> del mykey
//
// The client refuses to talk to a server whose attested measurement differs
// from --measurement — the remote-attestation trust anchor of §3.2.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/obs/snapshot.h"
#include "src/obs/tracer.h"
#include "src/router/router.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: shieldstore_cli --port N --measurement HEX64 [--authority-seed S]\n"
               "       [--plaintext] [--cluster SPEC] [--trace-sample N] COMMAND ARGS...\n"
               "commands: get K | set K V | del K | append K SUFFIX | incr K DELTA | ping\n"
               "          mset K V [K V ...] | mget K [K ...]   (one kBatch frame)\n"
               "          stats [--prometheus] [--json] [--check]  (kStats snapshot dump)\n"
               "          trace [--json] [CMD ARGS...]  (run CMD sampled at 1/1, then merge\n"
               "          the client's spans with every reachable node's kTraceDump; --json\n"
               "          emits Chrome trace_event JSON for chrome://tracing / Perfetto)\n"
               "cluster proxy mode: --cluster PORT[:FOLLOWER][,PORT[:FOLLOWER]...] routes\n"
               "get/set/del/incr/mset by consistent hash across the listed nodes, failing\n"
               "over to a node's follower if the primary dies; `nodefor K` prints the owner.\n");
}

// Moves the client-local span buffer into `out` tagged with pid 0 ("cli").
void CollectLocalSpans(std::vector<shield::obs::SpanRecord>* out) {
  shield::obs::TraceDrain();
  for (const shield::obs::Span& sp : shield::obs::TraceConsume()) {
    shield::obs::SpanRecord r;
    r.trace_id = sp.trace_id;
    r.span_id = sp.span_id;
    r.parent_span = sp.parent_span;
    r.start_unix_ns = sp.start_unix_ns;
    r.duration_ns = sp.duration_ns;
    r.tid = sp.tid;
    r.pid = 0;
    r.name = sp.name != nullptr ? sp.name : "";
    out->push_back(std::move(r));
  }
}

void PrintSpanTable(const std::vector<shield::obs::SpanRecord>& spans,
                    const std::vector<std::string>& process_names) {
  std::printf("%-18s %-18s %-18s %-10s %12s  %s\n", "trace", "span", "parent", "process",
              "dur_us", "name");
  for (const auto& s : spans) {
    const char* proc =
        s.pid < process_names.size() ? process_names[s.pid].c_str() : "?";
    std::printf("%016llx   %014llx     %014llx     %-10s %12.1f  %s\n",
                static_cast<unsigned long long>(s.trace_id),
                static_cast<unsigned long long>(s.span_id),
                static_cast<unsigned long long>(s.parent_span), proc,
                static_cast<double>(s.duration_ns) / 1e3, s.name.c_str());
  }
}

// --cluster "4555:4556,4557:4558" → router nodes named node0, node1, ...
bool ParseClusterSpec(const std::string& spec, std::vector<shield::router::RouterNode>* nodes) {
  size_t pos = 0;
  int index = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) {
      return false;
    }
    shield::router::RouterNode node;
    node.name = "node" + std::to_string(index++);
    const size_t colon = part.find(':');
    const int port = std::atoi(part.substr(0, colon).c_str());
    if (port <= 0 || port > 65535) {
      return false;
    }
    node.port = static_cast<uint16_t>(port);
    if (colon != std::string::npos) {
      const int follower = std::atoi(part.substr(colon + 1).c_str());
      if (follower <= 0 || follower > 65535) {
        return false;
      }
      node.follower_port = static_cast<uint16_t>(follower);
    }
    nodes->push_back(std::move(node));
  }
  return !nodes->empty();
}

// Cross-metric invariants a live server's snapshot must satisfy. Returns the
// number of violations (each printed to stderr). Used by check.sh to verify
// the stats pipeline end-to-end, not just that the frame decodes.
int CheckInvariants(const shield::obs::MetricsSnapshot& snap) {
  int violations = 0;
  auto fail = [&violations](const char* what) {
    std::fprintf(stderr, "stats check FAILED: %s\n", what);
    ++violations;
  };
  const uint64_t gets = snap.CounterValue("store.gets");
  const uint64_t hits = snap.CounterValue("store.hits");
  const uint64_t misses = snap.CounterValue("store.misses");
  if (gets != hits + misses) {
    std::fprintf(stderr, "  store.gets=%llu hits=%llu misses=%llu\n",
                 static_cast<unsigned long long>(gets), static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
    fail("store.gets != store.hits + store.misses");
  }
  uint64_t batch_sum = 0;
  for (const char* verb : {"get", "set", "delete", "append", "increment", "ping"}) {
    batch_sum += snap.CounterValue(std::string("net.batch_ops.") + verb);
  }
  if (batch_sum != snap.CounterValue("net.batch_ops")) {
    fail("net.batch_ops != sum of per-verb batch counters");
  }
  if (!snap.Has("stage.decode") || !snap.Has("stage.search_decrypt")) {
    fail("stage trace histograms missing from snapshot");
  }
  if (!snap.Has("sgx.epc.touches") || (!snap.Has("sgx.ecalls") && !snap.Has("sgx.hotcalls"))) {
    fail("sgx EPC / crossing counters missing from snapshot");
  }
  if (!snap.Has("crypto.backend")) {
    fail("crypto.backend gauge missing from snapshot");
  } else if (const int64_t backend = snap.GaugeValue("crypto.backend");
             backend != 0 && backend != 1) {
    fail("crypto.backend gauge out of range (want 0=table, 1=aes-ni)");
  }
  if (!snap.Has("store.crypto.ctr_bytes") || !snap.Has("store.crypto.cmac_bytes")) {
    fail("store crypto byte counters missing from snapshot");
  }
  // EPC plaintext-cache rate arithmetic: hits and misses partition lookups,
  // and the hit rate can never exceed 1. Holds trivially (all zeros) when
  // the cache is disabled, so it is always asserted.
  if (!snap.Has("store.cache.lookups") || !snap.Has("store.cache.hits") ||
      !snap.Has("store.cache.misses") || !snap.Has("store.cache.bytes")) {
    fail("store.cache.* plaintext-cache counters missing from snapshot");
  } else {
    const uint64_t lookups = snap.CounterValue("store.cache.lookups");
    const uint64_t cache_hits = snap.CounterValue("store.cache.hits");
    const uint64_t cache_misses = snap.CounterValue("store.cache.misses");
    if (cache_hits > lookups) {
      fail("store.cache.hits > store.cache.lookups (hit rate over 1)");
    }
    if (cache_hits + cache_misses != lookups) {
      fail("store.cache.hits + store.cache.misses != store.cache.lookups");
    }
  }
  // WAL metrics only exist when the server runs with --heal-dir.
  if (snap.Has("wal.records")) {
    for (const char* name : {"wal.commits", "wal.fsyncs", "wal.group_commits"}) {
      if (!snap.Has(name)) {
        std::fprintf(stderr, "  missing %s\n", name);
        fail("WAL metric set incomplete");
      }
    }
    if (snap.GaugeValue("wal.shards") <= 0) {
      fail("wal.shards gauge not positive");
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shield;
  uint16_t port = 4555;
  std::string measurement_hex;
  std::string authority_seed = "dev-authority";
  std::string cluster_spec;
  bool plaintext = false;
  uint32_t trace_sample = 0;  // 0 = no client-side tracing unless `trace` cmd
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--measurement" && i + 1 < argc) {
      measurement_hex = argv[++i];
    } else if (arg == "--authority-seed" && i + 1 < argc) {
      authority_seed = argv[++i];
    } else if (arg == "--plaintext") {
      plaintext = true;
    } else if (arg == "--cluster" && i + 1 < argc) {
      cluster_spec = argv[++i];
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      trace_sample = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else {
      break;  // start of the command
    }
  }
  if (i >= argc || measurement_hex.size() != 64) {
    Usage();
    return 2;
  }
  // The trace command forces 1/1 sampling: the one op it wraps IS the trace.
  const bool trace_cmd = std::string(argv[i]) == "trace";
  if (trace_cmd) {
    trace_sample = 1;
  }
  obs::TraceSetSampleEvery(trace_sample);
  const bool tracing = trace_sample > 0;
  const Bytes measurement_bytes = HexDecode(measurement_hex);
  if (measurement_bytes.size() != 32) {
    std::fprintf(stderr, "--measurement must be 64 hex characters\n");
    return 2;
  }
  sgx::Measurement expected;
  std::memcpy(expected.data(), measurement_bytes.data(), 32);

  sgx::AttestationAuthority authority(AsBytes(authority_seed));

  // Cluster proxy mode: one attested session per node, keys routed by
  // consistent hash, transparent failover to a node's follower.
  if (!cluster_spec.empty()) {
    std::vector<router::RouterNode> nodes;
    if (!ParseClusterSpec(cluster_spec, &nodes)) {
      std::fprintf(stderr, "bad --cluster spec (want PORT[:FOLLOWER],...)\n");
      return 2;
    }
    router::RouterOptions router_options;
    router_options.encrypt = !plaintext;
    router_options.client.enable_tracing = tracing;
    router::Router rt(authority, expected, std::move(nodes), router_options);
    if (Status s = rt.Start(); !s.ok()) {
      std::fprintf(stderr, "cluster connect failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const std::string command = argv[i];
    auto arg_at = [&](int offset) -> const char* {
      return i + offset < argc ? argv[i + offset] : nullptr;
    };
    int rc = 0;
    if (command == "get" && arg_at(1) != nullptr) {
      Result<std::string> value = rt.Get(arg_at(1));
      if (!value.ok()) {
        std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
        rc = 1;
      } else {
        std::printf("%s\n", value->c_str());
      }
    } else if (command == "set" && arg_at(2) != nullptr) {
      const Status s = rt.Set(arg_at(1), arg_at(2));
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        rc = 1;
      } else {
        std::printf("OK (%s)\n", rt.NodeFor(arg_at(1)).c_str());
      }
    } else if (command == "del" && arg_at(1) != nullptr) {
      const Status s = rt.Delete(arg_at(1));
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        rc = 1;
      } else {
        std::printf("OK\n");
      }
    } else if (command == "incr" && arg_at(2) != nullptr) {
      Result<int64_t> value = rt.Increment(arg_at(1), std::atoll(arg_at(2)));
      if (!value.ok()) {
        std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
        rc = 1;
      } else {
        std::printf("%lld\n", static_cast<long long>(*value));
      }
    } else if (command == "mset" && arg_at(2) != nullptr && (argc - i - 1) % 2 == 0) {
      std::vector<std::pair<std::string, std::string>> pairs;
      for (int j = i + 1; j + 1 < argc; j += 2) {
        pairs.emplace_back(argv[j], argv[j + 1]);
      }
      const Status s = rt.MSet(pairs);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        rc = 1;
      } else {
        std::printf("OK (%zu keys, one batch frame per owner node)\n", pairs.size());
      }
    } else if (command == "trace") {
      bool json = false;
      int j = i + 1;
      if (j < argc && std::string(argv[j]) == "--json") {
        json = true;
        ++j;
      }
      // Optional traced sub-command, sampled at 1/1 under one fresh root.
      if (j < argc) {
        obs::TraceRoot root("cli.op");
        const std::string sub = argv[j];
        Status s = Status::Ok();
        if (sub == "get" && j + 1 < argc) {
          Result<std::string> value = rt.Get(argv[j + 1]);
          if (!value.ok()) {
            s = value.status();
          }
        } else if (sub == "set" && j + 2 < argc) {
          s = rt.Set(argv[j + 1], argv[j + 2]);
        } else if (sub == "del" && j + 1 < argc) {
          s = rt.Delete(argv[j + 1]);
        } else if (sub == "mset" && j + 2 < argc && (argc - j - 1) % 2 == 0) {
          std::vector<std::pair<std::string, std::string>> pairs;
          for (int k = j + 1; k + 1 < argc; k += 2) {
            pairs.emplace_back(argv[k], argv[k + 1]);
          }
          s = rt.MSet(pairs);
        } else {
          Usage();
          rt.Stop();
          return 2;
        }
        if (!s.ok()) {
          std::fprintf(stderr, "traced op failed: %s\n", s.ToString().c_str());
          rc = 1;
        }
      }
      std::vector<obs::SpanRecord> spans;
      CollectLocalSpans(&spans);
      std::vector<std::string> process_names = {"cli"};
      uint32_t pid = 1;
      for (const std::string& name : rt.Nodes()) {
        Result<std::vector<obs::SpanRecord>> dump = rt.TraceDump(name);
        process_names.push_back(name);
        if (dump.ok()) {
          for (obs::SpanRecord& r : *dump) {
            r.pid = pid;
            spans.push_back(std::move(r));
          }
        } else {
          std::fprintf(stderr, "trace dump from %s failed: %s\n", name.c_str(),
                       dump.status().ToString().c_str());
        }
        ++pid;
      }
      if (json) {
        std::fputs(obs::RenderChromeTrace(spans, process_names).c_str(), stdout);
      } else {
        PrintSpanTable(spans, process_names);
      }
    } else if (command == "nodefor" && arg_at(1) != nullptr) {
      const std::string& owner = rt.NodeFor(arg_at(1));
      std::printf("%s (port %u)\n", owner.c_str(), rt.ActivePort(owner));
    } else {
      Usage();
      rc = 2;
    }
    rt.Stop();
    return rc;
  }

  net::ClientOptions copts;
  copts.enable_tracing = tracing;
  net::Client client(authority, expected, !plaintext, copts);
  if (Status s = client.Connect(port); !s.ok()) {
    std::fprintf(stderr, "connect/attestation failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::string command = argv[i];
  auto arg_at = [&](int offset) -> const char* {
    return i + offset < argc ? argv[i + offset] : nullptr;
  };
  if (command == "get" && arg_at(1) != nullptr) {
    Result<std::string> value = client.Get(arg_at(1));
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", value->c_str());
  } else if (command == "set" && arg_at(2) != nullptr) {
    const Status s = client.Set(arg_at(1), arg_at(2));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
  } else if (command == "del" && arg_at(1) != nullptr) {
    const Status s = client.Delete(arg_at(1));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
  } else if (command == "append" && arg_at(2) != nullptr) {
    const Status s = client.Append(arg_at(1), arg_at(2));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
  } else if (command == "incr" && arg_at(2) != nullptr) {
    Result<int64_t> value = client.Increment(arg_at(1), std::atoll(arg_at(2)));
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      return 1;
    }
    std::printf("%lld\n", static_cast<long long>(*value));
  } else if (command == "mset" && arg_at(2) != nullptr && (argc - i - 1) % 2 == 0) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int j = i + 1; j + 1 < argc; j += 2) {
      pairs.emplace_back(argv[j], argv[j + 1]);
    }
    const Status s = client.MSet(pairs);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK (%zu keys, one frame)\n", pairs.size());
  } else if (command == "mget" && arg_at(1) != nullptr) {
    std::vector<std::string> keys;
    for (int j = i + 1; j < argc; ++j) {
      keys.emplace_back(argv[j]);
    }
    Result<std::vector<net::Response>> responses = client.MGet(keys);
    if (!responses.ok()) {
      std::fprintf(stderr, "%s\n", responses.status().ToString().c_str());
      return 1;
    }
    int rc = 0;
    for (size_t j = 0; j < responses->size(); ++j) {
      const net::Response& r = (*responses)[j];
      if (r.status == Code::kOk) {
        std::printf("%s=%s\n", keys[j].c_str(), r.value.c_str());
      } else {
        std::printf("%s: %s\n", keys[j].c_str(),
                    Status(r.status, "").ToString().c_str());
        rc = 1;
      }
    }
    return rc;
  } else if (command == "stats") {
    bool prometheus = false;
    bool json = false;
    bool check = false;
    for (int j = i + 1; j < argc; ++j) {
      const std::string opt = argv[j];
      if (opt == "--prometheus") {
        prometheus = true;
      } else if (opt == "--json") {
        json = true;
      } else if (opt == "--check") {
        check = true;
      } else {
        Usage();
        return 2;
      }
    }
    Result<obs::MetricsSnapshot> snap = client.Stats();
    if (!snap.ok()) {
      std::fprintf(stderr, "stats failed: %s\n", snap.status().ToString().c_str());
      return 1;
    }
    std::fputs(json        ? obs::RenderJson(*snap).c_str()
               : prometheus ? obs::RenderPrometheus(*snap).c_str()
                            : obs::RenderTable(*snap).c_str(),
               stdout);
    if (check) {
      const int violations = CheckInvariants(*snap);
      if (violations > 0) {
        return 1;
      }
      std::printf("stats check OK (%zu metrics)\n", snap->metrics.size());
    }
  } else if (command == "trace") {
    bool json = false;
    int j = i + 1;
    if (j < argc && std::string(argv[j]) == "--json") {
      json = true;
      ++j;
    }
    int rc = 0;
    // Optional traced sub-command, sampled at 1/1 under one fresh root.
    if (j < argc) {
      obs::TraceRoot root("cli.op");
      const std::string sub = argv[j];
      Status s = Status::Ok();
      if (sub == "get" && j + 1 < argc) {
        Result<std::string> value = client.Get(argv[j + 1]);
        if (!value.ok()) {
          s = value.status();
        }
      } else if (sub == "set" && j + 2 < argc) {
        s = client.Set(argv[j + 1], argv[j + 2]);
      } else if (sub == "del" && j + 1 < argc) {
        s = client.Delete(argv[j + 1]);
      } else if (sub == "mset" && j + 2 < argc && (argc - j - 1) % 2 == 0) {
        std::vector<std::pair<std::string, std::string>> pairs;
        for (int k = j + 1; k + 1 < argc; k += 2) {
          pairs.emplace_back(argv[k], argv[k + 1]);
        }
        s = client.MSet(pairs);
      } else if (sub == "ping") {
        net::Request request;
        request.op = net::OpCode::kPing;
        Result<net::Response> response = client.Execute(request);
        if (!response.ok()) {
          s = response.status();
        }
      } else {
        Usage();
        return 2;
      }
      if (!s.ok()) {
        std::fprintf(stderr, "traced op failed: %s\n", s.ToString().c_str());
        rc = 1;
      }
    }
    std::vector<obs::SpanRecord> spans;
    CollectLocalSpans(&spans);
    Result<std::vector<obs::SpanRecord>> dump = client.TraceDump();
    if (dump.ok()) {
      for (obs::SpanRecord& r : *dump) {
        r.pid = 1;
        spans.push_back(std::move(r));
      }
    } else {
      std::fprintf(stderr, "trace dump failed: %s\n",
                   dump.status().ToString().c_str());
      rc = 1;
    }
    const std::vector<std::string> process_names = {"cli", "server"};
    if (json) {
      std::fputs(obs::RenderChromeTrace(spans, process_names).c_str(), stdout);
    } else {
      PrintSpanTable(spans, process_names);
    }
    return rc;
  } else if (command == "ping") {
    net::Request request;
    request.op = net::OpCode::kPing;
    Result<net::Response> response = client.Execute(request);
    if (!response.ok() || response->status != Code::kOk) {
      std::fprintf(stderr, "ping failed\n");
      return 1;
    }
    std::printf("%s\n", response->value.c_str());
  } else {
    Usage();
    return 2;
  }
  return 0;
}
