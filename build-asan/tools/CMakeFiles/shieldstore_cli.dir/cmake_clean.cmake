file(REMOVE_RECURSE
  "CMakeFiles/shieldstore_cli.dir/shieldstore_cli.cc.o"
  "CMakeFiles/shieldstore_cli.dir/shieldstore_cli.cc.o.d"
  "shieldstore_cli"
  "shieldstore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shieldstore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
