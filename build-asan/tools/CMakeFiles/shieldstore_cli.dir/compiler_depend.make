# Empty compiler generated dependencies file for shieldstore_cli.
# This may be replaced when dependencies are built.
