file(REMOVE_RECURSE
  "CMakeFiles/shieldstore_server.dir/shieldstore_server.cc.o"
  "CMakeFiles/shieldstore_server.dir/shieldstore_server.cc.o.d"
  "shieldstore_server"
  "shieldstore_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shieldstore_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
