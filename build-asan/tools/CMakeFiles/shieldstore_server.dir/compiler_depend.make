# Empty compiler generated dependencies file for shieldstore_server.
# This may be replaced when dependencies are built.
