file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merkle.dir/bench_ablation_merkle.cc.o"
  "CMakeFiles/bench_ablation_merkle.dir/bench_ablation_merkle.cc.o.d"
  "bench_ablation_merkle"
  "bench_ablation_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
