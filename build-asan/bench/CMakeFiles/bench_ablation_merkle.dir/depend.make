# Empty dependencies file for bench_ablation_merkle.
# This may be replaced when dependencies are built.
