file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_eleos_values.dir/bench_fig16_eleos_values.cc.o"
  "CMakeFiles/bench_fig16_eleos_values.dir/bench_fig16_eleos_values.cc.o.d"
  "bench_fig16_eleos_values"
  "bench_fig16_eleos_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_eleos_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
