# Empty dependencies file for bench_fig16_eleos_values.
# This may be replaced when dependencies are built.
