file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_persistence.dir/bench_fig19_persistence.cc.o"
  "CMakeFiles/bench_fig19_persistence.dir/bench_fig19_persistence.cc.o.d"
  "bench_fig19_persistence"
  "bench_fig19_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
