file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_workloads.dir/bench_fig11_workloads.cc.o"
  "CMakeFiles/bench_fig11_workloads.dir/bench_fig11_workloads.cc.o.d"
  "bench_fig11_workloads"
  "bench_fig11_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
