file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_append.dir/bench_fig12_append.cc.o"
  "CMakeFiles/bench_fig12_append.dir/bench_fig12_append.cc.o.d"
  "bench_fig12_append"
  "bench_fig12_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
