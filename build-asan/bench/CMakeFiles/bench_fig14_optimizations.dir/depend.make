# Empty dependencies file for bench_fig14_optimizations.
# This may be replaced when dependencies are built.
