# Empty dependencies file for bench_fig15_mac_hashes.
# This may be replaced when dependencies are built.
