file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mac_hashes.dir/bench_fig15_mac_hashes.cc.o"
  "CMakeFiles/bench_fig15_mac_hashes.dir/bench_fig15_mac_hashes.cc.o.d"
  "bench_fig15_mac_hashes"
  "bench_fig15_mac_hashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mac_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
