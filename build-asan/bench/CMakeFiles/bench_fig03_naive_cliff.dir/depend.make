# Empty dependencies file for bench_fig03_naive_cliff.
# This may be replaced when dependencies are built.
