file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_naive_cliff.dir/bench_fig03_naive_cliff.cc.o"
  "CMakeFiles/bench_fig03_naive_cliff.dir/bench_fig03_naive_cliff.cc.o.d"
  "bench_fig03_naive_cliff"
  "bench_fig03_naive_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_naive_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
