# Empty dependencies file for bench_tab01_baseline_maturity.
# This may be replaced when dependencies are built.
