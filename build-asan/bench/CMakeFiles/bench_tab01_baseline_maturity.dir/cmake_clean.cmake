file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_baseline_maturity.dir/bench_tab01_baseline_maturity.cc.o"
  "CMakeFiles/bench_tab01_baseline_maturity.dir/bench_tab01_baseline_maturity.cc.o.d"
  "bench_tab01_baseline_maturity"
  "bench_tab01_baseline_maturity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_baseline_maturity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
