file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_eleos_wss.dir/bench_fig17_eleos_wss.cc.o"
  "CMakeFiles/bench_fig17_eleos_wss.dir/bench_fig17_eleos_wss.cc.o.d"
  "bench_fig17_eleos_wss"
  "bench_fig17_eleos_wss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_eleos_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
