# Empty compiler generated dependencies file for bench_fig17_eleos_wss.
# This may be replaced when dependencies are built.
