file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_heap_chunk.dir/bench_fig06_heap_chunk.cc.o"
  "CMakeFiles/bench_fig06_heap_chunk.dir/bench_fig06_heap_chunk.cc.o.d"
  "bench_fig06_heap_chunk"
  "bench_fig06_heap_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_heap_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
