# Empty compiler generated dependencies file for bench_fig06_heap_chunk.
# This may be replaced when dependencies are built.
