file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_key_hint.dir/bench_fig09_key_hint.cc.o"
  "CMakeFiles/bench_fig09_key_hint.dir/bench_fig09_key_hint.cc.o.d"
  "bench_fig09_key_hint"
  "bench_fig09_key_hint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_key_hint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
