# Empty compiler generated dependencies file for bench_fig09_key_hint.
# This may be replaced when dependencies are built.
