file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_networked.dir/bench_fig18_networked.cc.o"
  "CMakeFiles/bench_fig18_networked.dir/bench_fig18_networked.cc.o.d"
  "bench_fig18_networked"
  "bench_fig18_networked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_networked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
