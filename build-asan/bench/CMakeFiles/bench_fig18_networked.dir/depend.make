# Empty dependencies file for bench_fig18_networked.
# This may be replaced when dependencies are built.
