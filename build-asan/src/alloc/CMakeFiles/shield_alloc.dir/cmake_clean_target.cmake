file(REMOVE_RECURSE
  "libshield_alloc.a"
)
