file(REMOVE_RECURSE
  "CMakeFiles/shield_alloc.dir/free_list.cc.o"
  "CMakeFiles/shield_alloc.dir/free_list.cc.o.d"
  "CMakeFiles/shield_alloc.dir/memsys5.cc.o"
  "CMakeFiles/shield_alloc.dir/memsys5.cc.o.d"
  "CMakeFiles/shield_alloc.dir/slab.cc.o"
  "CMakeFiles/shield_alloc.dir/slab.cc.o.d"
  "libshield_alloc.a"
  "libshield_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
