
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/free_list.cc" "src/alloc/CMakeFiles/shield_alloc.dir/free_list.cc.o" "gcc" "src/alloc/CMakeFiles/shield_alloc.dir/free_list.cc.o.d"
  "/root/repo/src/alloc/memsys5.cc" "src/alloc/CMakeFiles/shield_alloc.dir/memsys5.cc.o" "gcc" "src/alloc/CMakeFiles/shield_alloc.dir/memsys5.cc.o.d"
  "/root/repo/src/alloc/slab.cc" "src/alloc/CMakeFiles/shield_alloc.dir/slab.cc.o" "gcc" "src/alloc/CMakeFiles/shield_alloc.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/shield_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
