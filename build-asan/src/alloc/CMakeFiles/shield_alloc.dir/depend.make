# Empty dependencies file for shield_alloc.
# This may be replaced when dependencies are built.
