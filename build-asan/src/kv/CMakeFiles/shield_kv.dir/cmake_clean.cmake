file(REMOVE_RECURSE
  "CMakeFiles/shield_kv.dir/entry.cc.o"
  "CMakeFiles/shield_kv.dir/entry.cc.o.d"
  "CMakeFiles/shield_kv.dir/interface.cc.o"
  "CMakeFiles/shield_kv.dir/interface.cc.o.d"
  "libshield_kv.a"
  "libshield_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
