# Empty dependencies file for shield_kv.
# This may be replaced when dependencies are built.
