file(REMOVE_RECURSE
  "libshield_kv.a"
)
