# Empty compiler generated dependencies file for shield_common.
# This may be replaced when dependencies are built.
