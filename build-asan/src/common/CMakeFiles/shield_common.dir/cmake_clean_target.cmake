file(REMOVE_RECURSE
  "libshield_common.a"
)
