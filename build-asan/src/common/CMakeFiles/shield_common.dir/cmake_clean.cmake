file(REMOVE_RECURSE
  "CMakeFiles/shield_common.dir/bytes.cc.o"
  "CMakeFiles/shield_common.dir/bytes.cc.o.d"
  "CMakeFiles/shield_common.dir/cycles.cc.o"
  "CMakeFiles/shield_common.dir/cycles.cc.o.d"
  "CMakeFiles/shield_common.dir/logging.cc.o"
  "CMakeFiles/shield_common.dir/logging.cc.o.d"
  "CMakeFiles/shield_common.dir/rng.cc.o"
  "CMakeFiles/shield_common.dir/rng.cc.o.d"
  "CMakeFiles/shield_common.dir/status.cc.o"
  "CMakeFiles/shield_common.dir/status.cc.o.d"
  "libshield_common.a"
  "libshield_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
