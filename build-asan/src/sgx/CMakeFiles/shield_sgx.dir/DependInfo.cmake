
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/attestation.cc" "src/sgx/CMakeFiles/shield_sgx.dir/attestation.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/attestation.cc.o.d"
  "/root/repo/src/sgx/counter.cc" "src/sgx/CMakeFiles/shield_sgx.dir/counter.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/counter.cc.o.d"
  "/root/repo/src/sgx/enclave.cc" "src/sgx/CMakeFiles/shield_sgx.dir/enclave.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/enclave.cc.o.d"
  "/root/repo/src/sgx/epc.cc" "src/sgx/CMakeFiles/shield_sgx.dir/epc.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/epc.cc.o.d"
  "/root/repo/src/sgx/hotcalls.cc" "src/sgx/CMakeFiles/shield_sgx.dir/hotcalls.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/hotcalls.cc.o.d"
  "/root/repo/src/sgx/seal.cc" "src/sgx/CMakeFiles/shield_sgx.dir/seal.cc.o" "gcc" "src/sgx/CMakeFiles/shield_sgx.dir/seal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/shield_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/alloc/CMakeFiles/shield_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
