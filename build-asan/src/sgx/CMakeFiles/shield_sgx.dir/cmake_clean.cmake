file(REMOVE_RECURSE
  "CMakeFiles/shield_sgx.dir/attestation.cc.o"
  "CMakeFiles/shield_sgx.dir/attestation.cc.o.d"
  "CMakeFiles/shield_sgx.dir/counter.cc.o"
  "CMakeFiles/shield_sgx.dir/counter.cc.o.d"
  "CMakeFiles/shield_sgx.dir/enclave.cc.o"
  "CMakeFiles/shield_sgx.dir/enclave.cc.o.d"
  "CMakeFiles/shield_sgx.dir/epc.cc.o"
  "CMakeFiles/shield_sgx.dir/epc.cc.o.d"
  "CMakeFiles/shield_sgx.dir/hotcalls.cc.o"
  "CMakeFiles/shield_sgx.dir/hotcalls.cc.o.d"
  "CMakeFiles/shield_sgx.dir/seal.cc.o"
  "CMakeFiles/shield_sgx.dir/seal.cc.o.d"
  "libshield_sgx.a"
  "libshield_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
