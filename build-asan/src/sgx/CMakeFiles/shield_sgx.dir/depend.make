# Empty dependencies file for shield_sgx.
# This may be replaced when dependencies are built.
