file(REMOVE_RECURSE
  "libshield_sgx.a"
)
