file(REMOVE_RECURSE
  "CMakeFiles/shield_baseline.dir/baseline_store.cc.o"
  "CMakeFiles/shield_baseline.dir/baseline_store.cc.o.d"
  "CMakeFiles/shield_baseline.dir/memcached_like.cc.o"
  "CMakeFiles/shield_baseline.dir/memcached_like.cc.o.d"
  "libshield_baseline.a"
  "libshield_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
