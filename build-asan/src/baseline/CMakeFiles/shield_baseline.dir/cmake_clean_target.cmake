file(REMOVE_RECURSE
  "libshield_baseline.a"
)
