# Empty compiler generated dependencies file for shield_baseline.
# This may be replaced when dependencies are built.
