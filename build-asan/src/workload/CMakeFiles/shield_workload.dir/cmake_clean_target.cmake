file(REMOVE_RECURSE
  "libshield_workload.a"
)
