# Empty dependencies file for shield_workload.
# This may be replaced when dependencies are built.
