file(REMOVE_RECURSE
  "CMakeFiles/shield_workload.dir/generator.cc.o"
  "CMakeFiles/shield_workload.dir/generator.cc.o.d"
  "CMakeFiles/shield_workload.dir/zipf.cc.o"
  "CMakeFiles/shield_workload.dir/zipf.cc.o.d"
  "libshield_workload.a"
  "libshield_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
