file(REMOVE_RECURSE
  "libshield_crypto.a"
)
