# Empty compiler generated dependencies file for shield_crypto.
# This may be replaced when dependencies are built.
