file(REMOVE_RECURSE
  "CMakeFiles/shield_crypto.dir/aes.cc.o"
  "CMakeFiles/shield_crypto.dir/aes.cc.o.d"
  "CMakeFiles/shield_crypto.dir/cmac.cc.o"
  "CMakeFiles/shield_crypto.dir/cmac.cc.o.d"
  "CMakeFiles/shield_crypto.dir/ctr.cc.o"
  "CMakeFiles/shield_crypto.dir/ctr.cc.o.d"
  "CMakeFiles/shield_crypto.dir/drbg.cc.o"
  "CMakeFiles/shield_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/shield_crypto.dir/hmac.cc.o"
  "CMakeFiles/shield_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/shield_crypto.dir/merkle.cc.o"
  "CMakeFiles/shield_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/shield_crypto.dir/sha256.cc.o"
  "CMakeFiles/shield_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/shield_crypto.dir/siphash.cc.o"
  "CMakeFiles/shield_crypto.dir/siphash.cc.o.d"
  "CMakeFiles/shield_crypto.dir/x25519.cc.o"
  "CMakeFiles/shield_crypto.dir/x25519.cc.o.d"
  "libshield_crypto.a"
  "libshield_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
