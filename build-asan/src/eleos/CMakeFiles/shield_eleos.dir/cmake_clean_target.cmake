file(REMOVE_RECURSE
  "libshield_eleos.a"
)
