# Empty compiler generated dependencies file for shield_eleos.
# This may be replaced when dependencies are built.
