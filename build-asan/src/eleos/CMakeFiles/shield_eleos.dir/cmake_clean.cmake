file(REMOVE_RECURSE
  "CMakeFiles/shield_eleos.dir/eleos_kv.cc.o"
  "CMakeFiles/shield_eleos.dir/eleos_kv.cc.o.d"
  "CMakeFiles/shield_eleos.dir/suvm.cc.o"
  "CMakeFiles/shield_eleos.dir/suvm.cc.o.d"
  "libshield_eleos.a"
  "libshield_eleos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_eleos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
