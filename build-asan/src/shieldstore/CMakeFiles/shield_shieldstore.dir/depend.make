# Empty dependencies file for shield_shieldstore.
# This may be replaced when dependencies are built.
