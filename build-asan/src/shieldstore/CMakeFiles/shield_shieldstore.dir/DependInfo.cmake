
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shieldstore/cache.cc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/cache.cc.o" "gcc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/cache.cc.o.d"
  "/root/repo/src/shieldstore/oplog.cc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/oplog.cc.o" "gcc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/oplog.cc.o.d"
  "/root/repo/src/shieldstore/partitioned.cc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/partitioned.cc.o" "gcc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/partitioned.cc.o.d"
  "/root/repo/src/shieldstore/persist.cc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/persist.cc.o" "gcc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/persist.cc.o.d"
  "/root/repo/src/shieldstore/store.cc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/store.cc.o" "gcc" "src/shieldstore/CMakeFiles/shield_shieldstore.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/kv/CMakeFiles/shield_kv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sgx/CMakeFiles/shield_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/alloc/CMakeFiles/shield_alloc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/shield_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
