file(REMOVE_RECURSE
  "CMakeFiles/shield_shieldstore.dir/cache.cc.o"
  "CMakeFiles/shield_shieldstore.dir/cache.cc.o.d"
  "CMakeFiles/shield_shieldstore.dir/oplog.cc.o"
  "CMakeFiles/shield_shieldstore.dir/oplog.cc.o.d"
  "CMakeFiles/shield_shieldstore.dir/partitioned.cc.o"
  "CMakeFiles/shield_shieldstore.dir/partitioned.cc.o.d"
  "CMakeFiles/shield_shieldstore.dir/persist.cc.o"
  "CMakeFiles/shield_shieldstore.dir/persist.cc.o.d"
  "CMakeFiles/shield_shieldstore.dir/store.cc.o"
  "CMakeFiles/shield_shieldstore.dir/store.cc.o.d"
  "libshield_shieldstore.a"
  "libshield_shieldstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_shieldstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
