file(REMOVE_RECURSE
  "libshield_shieldstore.a"
)
