
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cc" "src/net/CMakeFiles/shield_net.dir/channel.cc.o" "gcc" "src/net/CMakeFiles/shield_net.dir/channel.cc.o.d"
  "/root/repo/src/net/client.cc" "src/net/CMakeFiles/shield_net.dir/client.cc.o" "gcc" "src/net/CMakeFiles/shield_net.dir/client.cc.o.d"
  "/root/repo/src/net/protocol.cc" "src/net/CMakeFiles/shield_net.dir/protocol.cc.o" "gcc" "src/net/CMakeFiles/shield_net.dir/protocol.cc.o.d"
  "/root/repo/src/net/server.cc" "src/net/CMakeFiles/shield_net.dir/server.cc.o" "gcc" "src/net/CMakeFiles/shield_net.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/kv/CMakeFiles/shield_kv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sgx/CMakeFiles/shield_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/alloc/CMakeFiles/shield_alloc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/shield_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
