file(REMOVE_RECURSE
  "libshield_net.a"
)
