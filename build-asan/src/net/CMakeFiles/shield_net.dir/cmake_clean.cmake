file(REMOVE_RECURSE
  "CMakeFiles/shield_net.dir/channel.cc.o"
  "CMakeFiles/shield_net.dir/channel.cc.o.d"
  "CMakeFiles/shield_net.dir/client.cc.o"
  "CMakeFiles/shield_net.dir/client.cc.o.d"
  "CMakeFiles/shield_net.dir/protocol.cc.o"
  "CMakeFiles/shield_net.dir/protocol.cc.o.d"
  "CMakeFiles/shield_net.dir/server.cc.o"
  "CMakeFiles/shield_net.dir/server.cc.o.d"
  "libshield_net.a"
  "libshield_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
