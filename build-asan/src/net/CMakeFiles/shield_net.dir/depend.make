# Empty dependencies file for shield_net.
# This may be replaced when dependencies are built.
