file(REMOVE_RECURSE
  "libshield_faultinject.a"
)
