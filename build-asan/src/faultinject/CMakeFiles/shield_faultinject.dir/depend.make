# Empty dependencies file for shield_faultinject.
# This may be replaced when dependencies are built.
