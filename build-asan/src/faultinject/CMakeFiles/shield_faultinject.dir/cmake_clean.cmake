file(REMOVE_RECURSE
  "CMakeFiles/shield_faultinject.dir/tamper.cc.o"
  "CMakeFiles/shield_faultinject.dir/tamper.cc.o.d"
  "libshield_faultinject.a"
  "libshield_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
