file(REMOVE_RECURSE
  "CMakeFiles/tamper_demo.dir/tamper_demo.cpp.o"
  "CMakeFiles/tamper_demo.dir/tamper_demo.cpp.o.d"
  "tamper_demo"
  "tamper_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamper_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
