# Empty dependencies file for tamper_demo.
# This may be replaced when dependencies are built.
