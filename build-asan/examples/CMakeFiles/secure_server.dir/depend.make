# Empty dependencies file for secure_server.
# This may be replaced when dependencies are built.
