file(REMOVE_RECURSE
  "CMakeFiles/secure_server.dir/secure_server.cpp.o"
  "CMakeFiles/secure_server.dir/secure_server.cpp.o.d"
  "secure_server"
  "secure_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
