# Empty compiler generated dependencies file for shieldstore_test.
# This may be replaced when dependencies are built.
