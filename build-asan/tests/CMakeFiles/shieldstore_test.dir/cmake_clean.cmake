file(REMOVE_RECURSE
  "CMakeFiles/shieldstore_test.dir/shieldstore_test.cc.o"
  "CMakeFiles/shieldstore_test.dir/shieldstore_test.cc.o.d"
  "shieldstore_test"
  "shieldstore_test.pdb"
  "shieldstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shieldstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
