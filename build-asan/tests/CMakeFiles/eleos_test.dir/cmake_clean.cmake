file(REMOVE_RECURSE
  "CMakeFiles/eleos_test.dir/eleos_test.cc.o"
  "CMakeFiles/eleos_test.dir/eleos_test.cc.o.d"
  "eleos_test"
  "eleos_test.pdb"
  "eleos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eleos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
