# Empty compiler generated dependencies file for eleos_test.
# This may be replaced when dependencies are built.
