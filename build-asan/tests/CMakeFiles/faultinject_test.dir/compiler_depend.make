# Empty compiler generated dependencies file for faultinject_test.
# This may be replaced when dependencies are built.
