file(REMOVE_RECURSE
  "CMakeFiles/faultinject_test.dir/faultinject_test.cc.o"
  "CMakeFiles/faultinject_test.dir/faultinject_test.cc.o.d"
  "faultinject_test"
  "faultinject_test.pdb"
  "faultinject_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultinject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
