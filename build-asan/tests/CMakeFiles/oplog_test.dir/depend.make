# Empty dependencies file for oplog_test.
# This may be replaced when dependencies are built.
