
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oplog_test.cc" "tests/CMakeFiles/oplog_test.dir/oplog_test.cc.o" "gcc" "tests/CMakeFiles/oplog_test.dir/oplog_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/shieldstore/CMakeFiles/shield_shieldstore.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kv/CMakeFiles/shield_kv.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sgx/CMakeFiles/shield_sgx.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/alloc/CMakeFiles/shield_alloc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/shield_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
