file(REMOVE_RECURSE
  "CMakeFiles/oplog_test.dir/oplog_test.cc.o"
  "CMakeFiles/oplog_test.dir/oplog_test.cc.o.d"
  "oplog_test"
  "oplog_test.pdb"
  "oplog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oplog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
