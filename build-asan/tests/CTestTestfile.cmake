# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sgx_test[1]_include.cmake")
include("/root/repo/build-asan/tests/alloc_test[1]_include.cmake")
include("/root/repo/build-asan/tests/shieldstore_test[1]_include.cmake")
include("/root/repo/build-asan/tests/baseline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/eleos_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/kv_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/oplog_test[1]_include.cmake")
include("/root/repo/build-asan/tests/faultinject_test[1]_include.cmake")
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
