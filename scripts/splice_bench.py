#!/usr/bin/env python3
"""Splices regenerated per-figure outputs into bench_output.txt.

Usage: splice_bench.py OUTPUT_TXT SECTION_NAME FRESH_FILE
Replaces the section starting at '### bench/SECTION_NAME' (up to the next
'### bench/' or EOF) with the contents of FRESH_FILE under the same header.
"""
import sys


def main() -> int:
    output_path, section, fresh_path = sys.argv[1], sys.argv[2], sys.argv[3]
    with open(output_path) as f:
        text = f.read()
    header = f"### bench/{section}"
    start = text.index(header)
    next_marker = text.find("\n### bench/", start + len(header))
    end = len(text) if next_marker < 0 else next_marker + 1
    with open(fresh_path) as f:
        fresh = f.read()
    replacement = header + "\n" + fresh
    if not replacement.endswith("\n"):
        replacement += "\n"
    with open(output_path, "w") as f:
        f.write(text[:start] + replacement + text[end:])
    print(f"spliced {section}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
