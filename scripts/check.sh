#!/usr/bin/env bash
# Tier-1 gate: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (SHIELD_SANITIZE).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
# Keep the bench harness's machine-readable BENCH_<name>.json out of the
# source tree.
export SHIELD_BENCH_JSON_DIR=build

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1 under ASan/UBSan =="
cmake -B build-asan -S . -DSHIELD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== concurrency battery under TSan =="
cmake -B build-tsan -S . -DSHIELD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrency_test selfheal_test
ctest --test-dir build-tsan --output-on-failure -R 'ConcurrencyTest|SelfHealNetTest'

echo "== WAL scaling bench (smoke) =="
# Exit code enforces the acceptance gate: sharded >= 3x single-log at 8
# simulated writers, equal durability discipline.
./build/bench/bench_wal_scaling --smoke --out build/BENCH_wal.json

echo "== batch throughput bench (smoke) =="
# Exit code enforces the acceptance gate: kBatch depth 16 >= 2x depth 1
# against a durable-ack (group-commit window) server.
./build/bench/bench_batch_throughput --smoke --out build/BENCH_batch.json

echo "== stats pipeline: live server -> kStats -> invariant check =="
# End-to-end: real daemon (WAL + self-heal mode), real CLI workload over
# encrypted sessions, then `stats --check` validates the cross-metric
# invariants and the Prometheus rendering carries the WAL/stage metrics.
STATS_DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$STATS_DIR"' EXIT
./build/tools/shieldstore_server --port 0 --partitions 2 --heal-dir "$STATS_DIR/heal" \
  --stats-interval-s 1 > "$STATS_DIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  grep -q 'listening on' "$STATS_DIR/server.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$STATS_DIR/server.log")"
MEAS="$(sed -n 's/.*measurement (give to clients): \([0-9a-f]*\).*/\1/p' "$STATS_DIR/server.log")"
CLI="./build/tools/shieldstore_cli --port $PORT --measurement $MEAS"
for i in $(seq 1 20); do $CLI set "key$i" "value$i" > /dev/null; done
for i in $(seq 1 20); do $CLI get "key$i" > /dev/null; done
$CLI get missing > /dev/null 2>&1 || true
$CLI mset b1 v1 b2 v2 b3 v3 > /dev/null
$CLI mget b1 b2 b3 > /dev/null
$CLI set ctr 1 > /dev/null
$CLI incr ctr 5 > /dev/null
$CLI stats --check > "$STATS_DIR/stats.txt"
grep -q 'stats check OK' "$STATS_DIR/stats.txt"
$CLI stats --prometheus > "$STATS_DIR/prom.txt"
for metric in shield_net_ops_get shield_net_latency_get_count shield_stage_search_decrypt_count \
              shield_sgx_epc_touches shield_wal_records shield_wal_group_commits \
              shield_store_partitions; do
  grep -q "^$metric" "$STATS_DIR/prom.txt" || { echo "missing $metric"; exit 1; }
done
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
echo "stats pipeline OK"

echo "== metrics overhead gate (< 3% vs no-op build) =="
# Same bench compiled twice: metrics recording always-on (default) vs
# compiled to no-ops (-DSHIELD_METRICS=OFF). Recording must keep >= 97% of
# the no-op throughput.
cmake -B build-noobs -S . -DSHIELD_METRICS=OFF >/dev/null
cmake --build build-noobs -j "$JOBS" --target bench_metrics_overhead
ON_KOPS="$(./build/bench/bench_metrics_overhead --smoke | awk '/^RESULT kops/ {print $3}')"
OFF_KOPS="$(SHIELD_BENCH_JSON_DIR=build-noobs ./build-noobs/bench/bench_metrics_overhead --smoke | awk '/^RESULT kops/ {print $3}')"
echo "metrics on: $ON_KOPS Kop/s, metrics off: $OFF_KOPS Kop/s"
awk -v on="$ON_KOPS" -v off="$OFF_KOPS" 'BEGIN {
  ratio = off > 0 ? on / off : 0;
  printf "overhead ratio: %.3f (gate: >= 0.97)\n", ratio;
  exit ratio >= 0.97 ? 0 : 1;
}'

echo "All checks passed."
