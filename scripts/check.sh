#!/usr/bin/env bash
# Tier-1 gate: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (SHIELD_SANITIZE).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1 under ASan/UBSan =="
cmake -B build-asan -S . -DSHIELD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== concurrency battery under TSan =="
cmake -B build-tsan -S . -DSHIELD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrency_test selfheal_test
ctest --test-dir build-tsan --output-on-failure -R 'ConcurrencyTest|SelfHealNetTest'

echo "== WAL scaling bench (smoke) =="
# Exit code enforces the acceptance gate: sharded >= 3x single-log at 8
# simulated writers, equal durability discipline.
./build/bench/bench_wal_scaling --smoke --out build/BENCH_wal.json

echo "== batch throughput bench (smoke) =="
# Exit code enforces the acceptance gate: kBatch depth 16 >= 2x depth 1
# against a durable-ack (group-commit window) server.
./build/bench/bench_batch_throughput --smoke --out build/BENCH_batch.json

echo "All checks passed."
