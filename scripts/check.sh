#!/usr/bin/env bash
# Tier-1 gate: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (SHIELD_SANITIZE).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
# Keep the bench harness's machine-readable BENCH_<name>.json out of the
# source tree.
export SHIELD_BENCH_JSON_DIR=build

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1 under ASan/UBSan =="
cmake -B build-asan -S . -DSHIELD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== concurrency battery under TSan =="
cmake -B build-tsan -S . -DSHIELD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target concurrency_test selfheal_test reactor_test persist_heap_test
ctest --test-dir build-tsan --output-on-failure -R 'ConcurrencyTest|SelfHealNetTest|ReactorTorture|PersistHeapTest'

echo "== WAL scaling bench (smoke) =="
# Exit code enforces the acceptance gate: sharded >= 3x single-log at 8
# simulated writers, equal durability discipline.
./build/bench/bench_wal_scaling --smoke --out build/BENCH_wal.json

echo "== restart bench: persistent-arena attach vs snapshot replay at 1M entries =="
# Exit code enforces the acceptance gate: mmap-backed arena attach >= 10x
# faster than sealed-snapshot replay at the largest size (1M entries). The
# arena-commit crash matrix itself runs under ASan/UBSan in the full-suite
# pass above (PersistentArenaTest + PersistHeapTest) and under TSan in the
# concurrency battery.
./build/bench/bench_restart

echo "== batch throughput bench (smoke) =="
# Exit code enforces the acceptance gate: kBatch depth 16 >= 2x depth 1
# against a durable-ack (group-commit window) server.
./build/bench/bench_batch_throughput --smoke --out build/BENCH_batch.json

echo "== crypto backend equivalence: forced-soft pass on the default build =="
# The same test binaries, with the hardware backend disabled at runtime: the
# table path must pass everything (and the cross-backend equivalence tests
# skip themselves, proving the env override reaches dispatch).
SHIELD_FORCE_SOFT_AES=1 ./build/tests/crypto_test --gtest_brief=1
SHIELD_FORCE_SOFT_AES=1 ./build/tests/kv_test --gtest_brief=1

echo "== crypto backend equivalence: -DSHIELD_DISABLE_AESNI build =="
# Compile-time gate: a build without the AES-NI TU at all must still pass
# the crypto, kv, and store suites on the table backend.
cmake -B build-softaes -S . -DSHIELD_DISABLE_AESNI=ON >/dev/null
cmake --build build-softaes -j "$JOBS" --target crypto_test kv_test shieldstore_test
ctest --test-dir build-softaes --output-on-failure -j "$JOBS" \
  -R 'Aes128Test|AesCtrTest|CmacTest|BackendTest|BackendEquivalenceTest|EntryTest|ShieldStoreTest'

echo "== micro crypto bench (smoke): AES-NI speedup gate =="
# Exit code enforces the tentpole target: hardware CTR and CMAC >= 2x the
# table backend at 4 KiB (skipped automatically where AES-NI is absent).
./build/bench/bench_micro_crypto --smoke --out build/BENCH_crypto.json

echo "== stats pipeline: live server -> kStats -> invariant check =="
# End-to-end: real daemon (WAL + self-heal mode), real CLI workload over
# encrypted sessions, then `stats --check` validates the cross-metric
# invariants and the Prometheus rendering carries the WAL/stage metrics.
STATS_DIR="$(mktemp -d)"
FO_DIR="$(mktemp -d)"
NL_DIR="$(mktemp -d)"
OBS_DIR="$(mktemp -d)"
FO_PIDS=""
OBS_PIDS=""
trap 'kill ${SERVER_PID:-} ${FO_PIDS:-} ${NL_PID:-} ${OBS_PIDS:-} 2>/dev/null || true; rm -rf "$STATS_DIR" "$FO_DIR" "$NL_DIR" "$OBS_DIR"' EXIT
./build/tools/shieldstore_server --port 0 --partitions 2 --heal-dir "$STATS_DIR/heal" \
  --stats-interval-s 1 > "$STATS_DIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  grep -q 'listening on' "$STATS_DIR/server.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$STATS_DIR/server.log")"
MEAS="$(sed -n 's/.*measurement (give to clients): \([0-9a-f]*\).*/\1/p' "$STATS_DIR/server.log")"
CLI="./build/tools/shieldstore_cli --port $PORT --measurement $MEAS"
for i in $(seq 1 20); do $CLI set "key$i" "value$i" > /dev/null; done
for i in $(seq 1 20); do $CLI get "key$i" > /dev/null; done
$CLI get missing > /dev/null 2>&1 || true
$CLI mset b1 v1 b2 v2 b3 v3 > /dev/null
$CLI mget b1 b2 b3 > /dev/null
$CLI set ctr 1 > /dev/null
$CLI incr ctr 5 > /dev/null
$CLI stats --check > "$STATS_DIR/stats.txt"
grep -q 'stats check OK' "$STATS_DIR/stats.txt"
$CLI stats --prometheus > "$STATS_DIR/prom.txt"
for metric in shield_net_ops_get shield_net_latency_get_count shield_stage_search_decrypt_count \
              shield_sgx_epc_touches shield_wal_records shield_wal_group_commits \
              shield_store_partitions shield_crypto_backend shield_store_crypto_ctr_bytes \
              shield_store_crypto_cmac_bytes; do
  grep -q "^$metric" "$STATS_DIR/prom.txt" || { echo "missing $metric"; exit 1; }
done
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
echo "stats pipeline OK"

echo "== multi-process failover smoke: 2 primaries + warm standbys, kill one mid-traffic =="
# Two shards behind the CLI's consistent-hash cluster mode, each primary
# shipping its WAL to a warm standby. One primary is SIGKILL'd mid-traffic;
# the gate is zero lost acked writes and recovery under 5 seconds.
fo_start() { # fo_start NAME [extra server flags...]
  local name="$1"; shift
  ./build/tools/shieldstore_server --port 0 --partitions 2 --buckets 4096 \
    --heal-dir "$FO_DIR/$name" --stats-interval-s 0 --wal-window-us 100 \
    --wal-group-ops 8 "$@" > "$FO_DIR/$name.log" 2>&1 &
  FO_LAST_PID=$!
  FO_PIDS="$FO_PIDS $FO_LAST_PID"
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$FO_DIR/$name.log" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "failover smoke: $name did not come up"; cat "$FO_DIR/$name.log"; exit 1
}
fo_port() { sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$FO_DIR/$1.log"; }
# Followers first (the primaries' attach needs them listening); the
# --replica-of port is informational in the push model, so 0 is fine here.
fo_start fa --replica-of 0
fo_start fb --replica-of 0
FA_PORT="$(fo_port fa)"; FB_PORT="$(fo_port fb)"
fo_start pa --replicate-to "$FA_PORT"
PA_PID=$FO_LAST_PID
fo_start pb --replicate-to "$FB_PORT"
PA_PORT="$(fo_port pa)"; PB_PORT="$(fo_port pb)"
FO_MEAS="$(sed -n 's/.*clients): \([0-9a-f]*\).*/\1/p' "$FO_DIR/pa.log")"
FO_CLI="./build/tools/shieldstore_cli --measurement $FO_MEAS --cluster $PA_PORT:$FA_PORT,$PB_PORT:$FB_PORT"
declare -A FO_ACKED
for i in $(seq 1 40); do
  if $FO_CLI set "fo-key$i" "fo-val$i" > /dev/null; then FO_ACKED[fo-key$i]="fo-val$i"; fi
done
[ "${#FO_ACKED[@]}" -ge 40 ] || { echo "failover smoke: load never got going"; exit 1; }
# A key owned by the doomed primary, so the recovery probe exercises it.
PA_KEY=""
for i in $(seq 1 40); do
  if $FO_CLI nodefor "fo-key$i" | grep -q '^node0 '; then PA_KEY="fo-key$i"; break; fi
done
[ -n "$PA_KEY" ] || { echo "failover smoke: no key routed to node0"; exit 1; }
kill -9 "$PA_PID"
FO_T0="$(date +%s%N)"
$FO_CLI get "$PA_KEY" > /dev/null || { echo "failover smoke: read after kill failed"; exit 1; }
FO_MS=$(( ($(date +%s%N) - FO_T0) / 1000000 ))
[ "$FO_MS" -lt 5000 ] || { echo "failover smoke: recovery took ${FO_MS}ms (gate 5000)"; exit 1; }
# Traffic keeps flowing through the transition (each CLI run re-promotes
# idempotently); acked writes keep accumulating.
for i in $(seq 41 50); do
  if $FO_CLI set "fo-key$i" "fo-val$i" > /dev/null 2>&1; then FO_ACKED[fo-key$i]="fo-val$i"; fi
done
# Zero acked-write loss across the whole run, byte for byte.
for key in "${!FO_ACKED[@]}"; do
  got="$($FO_CLI get "$key")" || { echo "failover smoke: lost acked write $key"; exit 1; }
  [ "$got" = "${FO_ACKED[$key]}" ] || { echo "failover smoke: $key read '$got'"; exit 1; }
done
# Counter-level cross-check on the promoted standby via the JSON stats dump.
./build/tools/shieldstore_cli --port "$FA_PORT" --measurement "$FO_MEAS" stats --json \
  > "$FO_DIR/fa-stats.json"
grep -q '"repl.role":{"type":"gauge","value":2}' "$FO_DIR/fa-stats.json" \
  || { echo "failover smoke: standby never promoted"; exit 1; }
grep -q '"repl.rejected_frames":{"type":"counter","value":0}' "$FO_DIR/fa-stats.json" \
  || { echo "failover smoke: replication stream saw rejected frames"; exit 1; }
kill $FO_PIDS 2>/dev/null || true
echo "failover smoke OK (recovery ${FO_MS}ms, ${#FO_ACKED[@]} acked writes verified)"

echo "== observability smoke: traced failover, hash-chained audit, tracing overhead gate =="
# Two primaries + warm standbys, every process tracing at 1/1 with an audit
# log. A traced mset rides the router; the merged Chrome trace must hold
# client-, server- and WAL-side spans. Then one primary dies by SIGKILL and
# every surviving audit chain must verify bit for bit — while a flipped byte
# or a truncation must be rejected.
obs_start() { # obs_start NAME [extra server flags...]
  local name="$1"; shift
  ./build/tools/shieldstore_server --port 0 --partitions 2 --buckets 4096 \
    --heal-dir "$OBS_DIR/$name" --stats-interval-s 0 --wal-window-us 100 \
    --wal-group-ops 8 --trace-sample 1 --audit-log "$OBS_DIR/$name.audit" \
    "$@" > "$OBS_DIR/$name.log" 2>&1 &
  OBS_LAST_PID=$!
  OBS_PIDS="$OBS_PIDS $OBS_LAST_PID"
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$OBS_DIR/$name.log" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "obs smoke: $name did not come up"; cat "$OBS_DIR/$name.log"; exit 1
}
obs_port() { sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$OBS_DIR/$1.log"; }
obs_start ofa --replica-of 0
obs_start ofb --replica-of 0
OFA_PORT="$(obs_port ofa)"; OFB_PORT="$(obs_port ofb)"
obs_start opa --replicate-to "$OFA_PORT"
OPA_PID=$OBS_LAST_PID
obs_start opb --replicate-to "$OFB_PORT"
OPA_PORT="$(obs_port opa)"; OPB_PORT="$(obs_port opb)"
OBS_MEAS="$(sed -n 's/.*clients): \([0-9a-f]*\).*/\1/p' "$OBS_DIR/opa.log")"
OBS_CLI="./build/tools/shieldstore_cli --measurement $OBS_MEAS --cluster $OPA_PORT:$OFA_PORT,$OPB_PORT:$OFB_PORT"
# A sampled MSet through the router, then the merged per-node trace dump.
$OBS_CLI trace --json mset tr-k1 tr-v1 tr-k2 tr-v2 tr-k3 tr-v3 tr-k4 tr-v4 \
  > "$OBS_DIR/trace.json"
python3 - "$OBS_DIR/trace.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no spans in the trace dump"
# One root op: every complete span must share its trace id.
ids = {s["args"]["trace_id"] for s in spans}
assert len(ids) == 1, f"expected one trace id, got {ids}"
names = {s["name"] for s in spans}
for want in ("cli.op", "client.batch", "server.batch", "wal.append"):
    assert want in names, f"missing span {want!r} (have {sorted(names)})"
# Client (pid 0) and server (pid >= 1) both contributed.
pids = {s["pid"] for s in spans}
assert 0 in pids and any(p >= 1 for p in pids), f"single-process trace: {pids}"
print(f"trace OK: {len(spans)} spans, {len(names)} stages, one trace id")
PYEOF
# Kill one primary mid-service; its standby serves, and every audit chain
# written so far — including the dead primary's — must still verify.
for i in $(seq 1 10); do $OBS_CLI set "obs-key$i" "obs-val$i" > /dev/null; done
kill -9 "$OPA_PID"
$OBS_CLI get obs-key1 > /dev/null || { echo "obs smoke: read after kill failed"; exit 1; }
./build/tools/audit_verify --quiet "$OBS_DIR"/opa.audit "$OBS_DIR"/opb.audit \
  "$OBS_DIR"/ofa.audit "$OBS_DIR"/ofb.audit \
  || { echo "obs smoke: audit chain broke across kill -9"; exit 1; }
# Tamper demo: any single flipped byte and any truncation must be rejected.
cp "$OBS_DIR/opb.audit" "$OBS_DIR/tampered.audit"
AUD_SIZE="$(stat -c%s "$OBS_DIR/tampered.audit")"
printf '\xff' | dd of="$OBS_DIR/tampered.audit" bs=1 seek="$((AUD_SIZE / 2))" \
  conv=notrunc status=none
./build/tools/audit_verify --quiet "$OBS_DIR/tampered.audit" > /dev/null 2>&1 \
  && { echo "obs smoke: flipped byte went undetected"; exit 1; }
head -c "$((AUD_SIZE - 7))" "$OBS_DIR/opb.audit" > "$OBS_DIR/truncated.audit"
./build/tools/audit_verify --quiet "$OBS_DIR/truncated.audit" > /dev/null 2>&1 \
  && { echo "obs smoke: truncation went undetected"; exit 1; }
kill $OBS_PIDS 2>/dev/null || true
echo "observability smoke OK"

echo "== tracing overhead gate (< 3% at default 1/256 sampling) =="
# Interleaved A/B windows over one live session pool inside bench_netload:
# sampling off vs the default 1/256, same sessions, same process — machine
# drift hits both sides of every pair. The bench's exit code enforces the
# >= 0.97 throughput ratio.
./build/bench/bench_netload --sessions 1,64 --seconds 1.0 --no-gates \
  --trace-overhead 3 --out "$OBS_DIR/nl-trace.json"

echo "== reactor netload: 10k sessions against a live daemon =="
# One epoll generator process ramps to 10k attested sessions against the
# real daemon (reactor + durable-ack WAL). The bench's exit code enforces:
# zero acked-op loss / protocol errors at every point, implicit batching
# engaged (coalesced-batch counter advanced), no throughput collapse from
# 100 to 1k sessions, and pipelined >= 2x singleton throughput.
# SHIELD_NETLOAD_SESSIONS trims the curve for sanitizer or constrained runs.
NL_SESSIONS="${SHIELD_NETLOAD_SESSIONS:-1,100,1000,10000}"
./build/tools/shieldstore_server --port 0 --partitions 2 --buckets 8192 \
  --io-threads 2 --max-sessions 16384 --heal-dir "$NL_DIR/heal" \
  --wal-window-us 100 --wal-group-ops 64 --stats-interval-s 1 \
  --stats-json "$NL_DIR/stats.json" > "$NL_DIR/server.log" 2>&1 &
NL_PID=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$NL_DIR/server.log" 2>/dev/null && break
  sleep 0.1
done
NL_PORT="$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$NL_DIR/server.log")"
NL_MEAS="$(sed -n 's/.*measurement (give to clients): \([0-9a-f]*\).*/\1/p' "$NL_DIR/server.log")"
./build/bench/bench_netload --port "$NL_PORT" --measurement "$NL_MEAS" \
  --sessions "$NL_SESSIONS" --seconds 0.5 --out "$NL_DIR/BENCH_netload.json"
# The periodic --stats-json dump must carry the reactor series.
sleep 1.5
for series in '"net.sessions_opened"' '"net.coalesced.batches"' '"net.sessions"'; do
  grep -q "$series" "$NL_DIR/stats.json" || { echo "stats-json missing $series"; exit 1; }
done
kill "$NL_PID"; wait "$NL_PID" 2>/dev/null || true
echo "reactor netload OK"

echo "== metrics overhead gate (< 3% vs no-op build) =="
# Same bench compiled twice: metrics recording always-on (default) vs
# compiled to no-ops (-DSHIELD_METRICS=OFF). Recording must keep >= 97% of
# the no-op throughput.
cmake -B build-noobs -S . -DSHIELD_METRICS=OFF >/dev/null
cmake --build build-noobs -j "$JOBS" --target bench_metrics_overhead
ON_KOPS="$(./build/bench/bench_metrics_overhead --smoke | awk '/^RESULT kops/ {print $3}')"
OFF_KOPS="$(SHIELD_BENCH_JSON_DIR=build-noobs ./build-noobs/bench/bench_metrics_overhead --smoke | awk '/^RESULT kops/ {print $3}')"
echo "metrics on: $ON_KOPS Kop/s, metrics off: $OFF_KOPS Kop/s"
awk -v on="$ON_KOPS" -v off="$OFF_KOPS" 'BEGIN {
  ratio = off > 0 ? on / off : 0;
  printf "overhead ratio: %.3f (gate: >= 0.97)\n", ratio;
  exit ratio >= 0.97 ? 0 : 1;
}'

echo "All checks passed."
